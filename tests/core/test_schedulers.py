"""Unit tests for the Device Manager task schedulers."""

import pytest

from repro.core.device_manager import (
    FIFOScheduler,
    Operation,
    OpType,
    PriorityScheduler,
    SJFScheduler,
    Task,
    WFQScheduler,
    make_scheduler,
)
from repro.sim import Environment


def make_task(client: str, tag=None) -> Task:
    task = Task(client, 0)
    task.append(Operation(type=OpType.MARKER, client=client, queue_id=0,
                          tag=tag))
    return task


def drain(env, scheduler, n):
    """Pop n tasks and return their clients in service order."""
    order = []

    def consumer():
        for _ in range(n):
            task = yield scheduler.pop()
            order.append(task.client)

    env.run(until=env.process(consumer()))
    return order


class TestFactory:
    def test_make_by_name(self):
        env = Environment()
        for name, cls in (("fifo", FIFOScheduler),
                          ("priority", PriorityScheduler),
                          ("sjf", SJFScheduler),
                          ("wfq", WFQScheduler)):
            assert isinstance(make_scheduler(name, env), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("lottery", Environment())


class TestFIFO:
    def test_arrival_order(self):
        env = Environment()
        scheduler = FIFOScheduler(env)
        for client in ("a", "b", "c"):
            scheduler.push(make_task(client), estimate=1.0)
        assert len(scheduler) == 3
        assert drain(env, scheduler, 3) == ["a", "b", "c"]

    def test_pop_blocks_until_push(self):
        env = Environment()
        scheduler = FIFOScheduler(env)
        got = []

        def consumer():
            task = yield scheduler.pop()
            got.append((env.now, task.client))

        def producer():
            yield env.timeout(2.0)
            scheduler.push(make_task("late"), 1.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(2.0, "late")]


class TestPriority:
    def test_lower_priority_value_first(self):
        env = Environment()
        scheduler = PriorityScheduler(env)
        scheduler.set_client_priority("gold", 0)
        scheduler.set_client_priority("bronze", 9)
        scheduler.push(make_task("bronze"), 1.0)
        scheduler.push(make_task("gold"), 1.0)
        scheduler.push(make_task("default"), 1.0)  # default priority 10
        assert drain(env, scheduler, 3) == ["gold", "bronze", "default"]

    def test_weight_maps_to_priority(self):
        env = Environment()
        scheduler = PriorityScheduler(env)
        scheduler.set_client_weight("heavy", 10.0)
        scheduler.set_client_weight("light", 1.0)
        scheduler.push(make_task("light"), 1.0)
        scheduler.push(make_task("heavy"), 1.0)
        assert drain(env, scheduler, 2) == ["heavy", "light"]


class TestSJF:
    def test_shortest_estimate_first(self):
        env = Environment()
        scheduler = SJFScheduler(env)
        scheduler.push(make_task("long"), estimate=5.0)
        scheduler.push(make_task("short"), estimate=0.1)
        scheduler.push(make_task("mid"), estimate=1.0)
        assert drain(env, scheduler, 3) == ["short", "mid", "long"]

    def test_ties_fifo(self):
        env = Environment()
        scheduler = SJFScheduler(env)
        scheduler.push(make_task("first"), 1.0)
        scheduler.push(make_task("second"), 1.0)
        assert drain(env, scheduler, 2) == ["first", "second"]


class TestWFQ:
    def test_weighted_shares(self):
        """A 3:1 weight split yields ~3:1 service order over a backlog."""
        env = Environment()
        scheduler = WFQScheduler(env)
        scheduler.set_client_weight("big", 3.0)
        scheduler.set_client_weight("small", 1.0)
        for _ in range(12):
            scheduler.push(make_task("big"), estimate=1.0)
            scheduler.push(make_task("small"), estimate=1.0)
        order = drain(env, scheduler, 16)
        big_served = order.count("big")
        small_served = order.count("small")
        assert big_served >= 2.0 * small_served

    def test_no_starvation(self):
        env = Environment()
        scheduler = WFQScheduler(env)
        scheduler.set_client_weight("big", 100.0)
        scheduler.set_client_weight("small", 1.0)
        for _ in range(50):
            scheduler.push(make_task("big"), estimate=1.0)
        scheduler.push(make_task("small"), estimate=1.0)
        order = drain(env, scheduler, 51)
        assert "small" in order

    def test_invalid_weight(self):
        scheduler = WFQScheduler(Environment())
        with pytest.raises(ValueError):
            scheduler.set_client_weight("x", 0.0)

    def test_equal_weights_alternate_fairly(self):
        env = Environment()
        scheduler = WFQScheduler(env)
        for _ in range(6):
            scheduler.push(make_task("a"), estimate=1.0)
        for _ in range(6):
            scheduler.push(make_task("b"), estimate=1.0)
        order = drain(env, scheduler, 12)
        # Client b must not wait for all of a's backlog.
        assert "b" in order[:4]


class TestTakeClient:
    """take_client underpins live migration: it must pull exactly the
    victim's backlog, in service order, without corrupting what stays."""

    def test_fifo_preserves_arrival_order(self):
        env = Environment()
        scheduler = FIFOScheduler(env)
        for client, tag in (("a", 1), ("b", 2), ("a", 3), ("c", 4),
                            ("a", 5)):
            scheduler.push(make_task(client, tag), estimate=1.0)
        taken = scheduler.take_client("a")
        assert [t.operations[0].tag for t in taken] == [1, 3, 5]
        assert len(scheduler) == 2
        assert drain(env, scheduler, 2) == ["b", "c"]

    def test_priority_returns_service_order_and_keeps_invariant(self):
        env = Environment()
        scheduler = PriorityScheduler(env)
        scheduler.set_client_priority("victim", 5)
        scheduler.set_client_priority("hi", 0)
        scheduler.set_client_priority("lo", 9)
        for client, tag in (("victim", 1), ("lo", 2), ("victim", 3),
                            ("hi", 4), ("victim", 5)):
            scheduler.push(make_task(client, tag), estimate=1.0)
        taken = scheduler.take_client("victim")
        # Same client, same priority: ties broken by arrival sequence.
        assert [t.operations[0].tag for t in taken] == [1, 3, 5]
        assert all(t.client == "victim" for t in taken)
        # The survivors still come out by priority.
        assert drain(env, scheduler, 2) == ["hi", "lo"]

    def test_wfq_take_then_serve(self):
        env = Environment()
        scheduler = WFQScheduler(env)
        scheduler.set_client_weight("victim", 1.0)
        scheduler.set_client_weight("other", 1.0)
        for index in range(4):
            scheduler.push(make_task("victim", 10 + index), estimate=1.0)
            scheduler.push(make_task("other", 20 + index), estimate=1.0)
        taken = scheduler.take_client("victim")
        assert [t.operations[0].tag for t in taken] == [10, 11, 12, 13]
        assert drain(env, scheduler, 4) == ["other"] * 4

    def test_absent_client_is_empty(self):
        for factory in (FIFOScheduler, PriorityScheduler, SJFScheduler,
                        WFQScheduler):
            scheduler = factory(Environment())
            scheduler.push(make_task("present"), estimate=1.0)
            assert scheduler.take_client("absent") == []
            assert len(scheduler) == 1

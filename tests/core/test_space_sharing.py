"""Space-sharing through the full remote stack (paper future work).

A two-slot board hosts the Sobel and MM accelerators simultaneously: two
clients build *different* programs without evicting each other, and their
kernels execute concurrently on the device.
"""

from dataclasses import replace

import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import DE5A_NET, FPGABoard, standard_library
from repro.ocl import Context
from repro.rpc import Network
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, name="fpga-B",
                      spec=replace(DE5A_NET, pr_slots=2), functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)
    return env, network, library, node, board, manager


def run(env, generator):
    return env.run(until=env.process(generator))


def test_two_accelerators_coexist(rig):
    env, network, library, node, board, manager = rig

    def sobel_client():
        platform = yield from remote_platform(
            env, "fn-sobel", node, manager, network, library
        )
        context = Context(platform.get_devices())
        queue = context.create_queue()
        program = context.create_program("sobel")
        yield from program.build()
        kernel = program.create_kernel("sobel")
        nbytes = 64 * 64 * 4
        in_buf = context.create_buffer(nbytes)
        out_buf = context.create_buffer(nbytes)
        kernel.set_args(in_buf, out_buf, 64, 64)
        yield from queue.run_kernel(kernel)
        return True

    def mm_client():
        platform = yield from remote_platform(
            env, "fn-mm", node, manager, network, library
        )
        context = Context(platform.get_devices())
        queue = context.create_queue()
        program = context.create_program("mm")
        yield from program.build()
        kernel = program.create_kernel("mm")
        bufs = [context.create_buffer(64 * 64 * 4) for _ in range(3)]
        kernel.set_args(*bufs, 64, 64, 64)
        yield from queue.run_kernel(kernel)
        return True

    def main():
        first = env.process(sobel_client())
        second = env.process(mm_client())
        yield first & second

    run(env, main())
    names = {slot.name for slot in board.slots if slot is not None}
    assert names == {"sobel", "mm"}
    # Partial reconfigurations, not full wipes.
    assert board.partial_reconfigurations == 2
    assert board.reconfigurations == 0


def test_rebuild_existing_slot_is_free(rig):
    env, network, library, node, board, manager = rig

    def flow():
        platform = yield from remote_platform(
            env, "fn-1", node, manager, network, library
        )
        context = Context(platform.get_devices())
        program = context.create_program("sobel")
        yield from program.build()
        before = env.now
        yield from context.create_program("sobel").build()
        return env.now - before

    rebuild_time = run(env, flow())
    assert rebuild_time < 0.05
    assert board.partial_reconfigurations == 1


def test_concurrent_kernels_across_slots(rig):
    """Two tenants' heavy kernels overlap on a 2-slot board."""
    env, network, library, node, board, manager = rig
    board.functional = False  # timing-only for the heavy kernels
    completions = []

    def client(name, binary, make_args):
        def flow():
            platform = yield from remote_platform(
                env, name, node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            program = context.create_program(binary)
            yield from program.build()
            kernel = program.create_kernel(binary)
            kernel.set_args(*make_args(context))
            start = env.now
            yield from queue.run_kernel(kernel)
            completions.append((name, start, env.now))

        return flow

    n = 2048
    sobel_args = lambda ctx: (
        ctx.create_buffer(1 << 20), ctx.create_buffer(1 << 20), 512, 512
    )
    mm_args = lambda ctx: (
        ctx.create_buffer(64), ctx.create_buffer(64), ctx.create_buffer(64),
        n, n, n,
    )

    def main():
        a = env.process(client("fn-sobel", "sobel", sobel_args)())
        b = env.process(client("fn-mm", "mm", mm_args)())
        yield a & b

    run(env, main())
    mm_time = library.get("mm").kernel("mm").duration(
        {"m": n, "n": n, "k": n}
    )
    spans = {name: (start, finish) for name, start, finish in completions}
    sobel_span = spans["fn-sobel"]
    mm_span = spans["fn-mm"]
    # The sobel kernel completed inside the mm kernel's execution window:
    # the two slots genuinely ran concurrently.
    assert sobel_span[1] < mm_span[1]
    assert mm_span[1] - mm_span[0] < 1.5 * mm_time + 1.0

"""Unit tests for the Device Manager's task model."""

import pytest

from repro.core.device_manager import Operation, OpType, Task, TaskAccumulator


def make_op(client="fn-1", queue_id=0, op_type=OpType.KERNEL, tag=None):
    return Operation(type=op_type, client=client, queue_id=queue_id, tag=tag)


class TestTask:
    def test_append_preserves_order(self):
        task = Task("fn-1", 0)
        ops = [make_op(tag=i) for i in range(3)]
        for op in ops:
            task.append(op)
        assert [op.tag for op in task.operations] == [0, 1, 2]
        assert len(task) == 3

    def test_append_wrong_client_rejected(self):
        task = Task("fn-1", 0)
        with pytest.raises(ValueError):
            task.append(make_op(client="fn-2"))

    def test_append_wrong_queue_rejected(self):
        task = Task("fn-1", 0)
        with pytest.raises(ValueError):
            task.append(make_op(queue_id=1))

    def test_task_ids_unique(self):
        assert Task("a", 0).id != Task("a", 0).id

    def test_empty_flag(self):
        task = Task("fn-1", 0)
        assert task.empty
        task.append(make_op())
        assert not task.empty


class TestTaskAccumulator:
    def test_ops_accumulate_per_client_queue(self):
        acc = TaskAccumulator()
        t1 = acc.add(make_op(client="a", queue_id=0, tag=1))
        t2 = acc.add(make_op(client="a", queue_id=0, tag=2))
        t3 = acc.add(make_op(client="b", queue_id=0, tag=3))
        assert t1 is t2
        assert t3 is not t1
        assert len(t1) == 2

    def test_separate_queues_separate_tasks(self):
        acc = TaskAccumulator()
        t1 = acc.add(make_op(queue_id=0))
        t2 = acc.add(make_op(queue_id=1))
        assert t1 is not t2

    def test_flush_closes_task(self):
        acc = TaskAccumulator()
        acc.add(make_op(tag=1))
        task = acc.flush("fn-1", 0)
        assert task is not None
        assert len(task) == 1
        # A new op after flush opens a fresh task.
        fresh = acc.add(make_op(tag=2))
        assert fresh is not task

    def test_flush_empty_returns_none(self):
        acc = TaskAccumulator()
        assert acc.flush("fn-1", 0) is None

    def test_flush_client_closes_all_queues(self):
        acc = TaskAccumulator()
        acc.add(make_op(queue_id=0))
        acc.add(make_op(queue_id=1))
        acc.add(make_op(client="other"))
        flushed = acc.flush_client("fn-1")
        assert len(flushed) == 2
        assert acc.open_count() == 1

    def test_write_op_needs_data(self):
        assert make_op(op_type=OpType.WRITE).needs_data()
        assert not make_op(op_type=OpType.READ).needs_data()

"""Failure detection and recovery across the BlastFunction stack.

Covers the injected fault modes (board lock-up, reconfiguration failure,
kernel hang, Device Manager crash/restart, worker death) and the recovery
machinery that resolves them: structured error codes on every reply, the
idempotent reply cache, data-arrival timeouts, and the heartbeat/lease
protocol between Device Managers and the Accelerators Registry.
"""

import pytest

from repro.cluster import build_testbed
from repro.core.device_manager import DeviceManager, protocol
from repro.core.device_manager.manager import DeviceManagerError, _error_code
from repro.core.registry import AcceleratorsRegistry
from repro.faults import FaultScript, HealthPolicy
from repro.fpga import FPGABoard, KernelFault, standard_library
from repro.fpga.board import BoardUnavailableError, ReconfigurationError
from repro.ocl.errors import (
    CL_DEVICE_NOT_AVAILABLE,
    CL_INVALID_KERNEL_NAME,
    CL_INVALID_MEM_OBJECT,
    CL_INVALID_VALUE,
    CL_MEM_OBJECT_ALLOCATION_FAILURE,
    CL_OUT_OF_RESOURCES,
)
from repro.rpc import (
    Message,
    Network,
    RpcEndpoint,
    RpcError,
    RpcTimeout,
    ShmTransport,
    unary_call,
)
from repro.sim import Environment


def run(env, generator):
    return env.run(until=env.process(generator))


# ---------------------------------------------------------------------------
# Board fault modes
# ---------------------------------------------------------------------------

class TestBoardFaults:
    def test_lock_up_refuses_everything(self):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, name="fpga-T", functional=True)
        run(env, board.program(library.get("sobel")))
        board.lock_up()
        assert not board.alive
        assert board.lockups == 1
        with pytest.raises(BoardUnavailableError, match="locked up"):
            board.allocate(64)
        with pytest.raises(BoardUnavailableError):
            run(env, board.program(library.get("mm")))

    def test_recover_wipes_state_and_serves_again(self):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, name="fpga-T", functional=True)
        run(env, board.program(library.get("sobel")))
        board.allocate(1024)
        board.lock_up()
        board.recover()
        assert board.alive
        assert board.memory.used == 0  # lock-up recovery wipes memory
        board.allocate(64)  # serves again

    def test_reconfiguration_failure_leaves_board_unprogrammed(self):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, name="fpga-T", functional=True)
        board.reconfiguration_injector = lambda bitstream: True
        with pytest.raises(ReconfigurationError):
            run(env, board.program(library.get("sobel")))
        assert not board.programmed
        board.reconfiguration_injector = None
        run(env, board.program(library.get("sobel")))
        assert board.programmed

    def test_kernel_hang_detected_after_watchdog_window(self):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, name="fpga-T", functional=False)
        run(env, board.program(library.get("sobel")))
        board.fault_injector = lambda kernel, n: "hang"
        src = board.allocate(64)
        dst = board.allocate(64)
        before = env.now
        with pytest.raises(KernelFault, match="hung on board"):
            run(env, board.execute("sobel", [src, dst, 4, 4]))
        assert env.now - before >= board.hang_detect_seconds


# ---------------------------------------------------------------------------
# Structured error codes
# ---------------------------------------------------------------------------

class TestErrorCodes:
    def test_error_code_mapping(self):
        from repro.fpga import OutOfMemoryError

        assert _error_code(OutOfMemoryError("full")) == \
            CL_MEM_OBJECT_ALLOCATION_FAILURE
        assert _error_code(KernelFault("died")) == CL_OUT_OF_RESOURCES
        assert _error_code(BoardUnavailableError("locked")) == \
            CL_DEVICE_NOT_AVAILABLE
        assert _error_code(ValueError("bad")) == CL_INVALID_VALUE
        assert _error_code(
            DeviceManagerError("x", cl_code=CL_INVALID_KERNEL_NAME)
        ) == CL_INVALID_KERNEL_NAME


# ---------------------------------------------------------------------------
# Device Manager crash / restart / worker death / idempotent retries
# ---------------------------------------------------------------------------

@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, standard_library(),
                            network, node)
    transport = ShmTransport(env, network, node, node)
    completions = RpcEndpoint(env, "client/completions")
    return env, manager, transport, completions


def connect(env, manager, transport, completions, client="raw-client"):
    def flow():
        return (yield from unary_call(
            transport, manager.endpoint, protocol.CONNECT,
            {"transport": transport, "completion_queue": completions},
            sender=client,
        ))

    return env.run(until=env.process(flow()))


def call(env, manager, transport, method, payload, client="raw-client",
         timeout=None, request_id=None):
    def flow():
        return (yield from unary_call(
            transport, manager.endpoint, method, payload, sender=client,
            timeout=timeout, request_id=request_id,
        ))

    return env.run(until=env.process(flow()))


def stream(env, manager, transport, method, payload, tag=None,
           client="raw-client"):
    """Deliver a streamed (no-reply) message with transport delay."""

    def flow():
        yield from transport.control_to_server()
        manager.endpoint.deliver(Message(
            method=method, payload=payload, sender=client, tag=tag
        ))

    env.run(until=env.process(flow()))


class TestManagerCrash:
    def test_crash_stops_serving_and_restart_resumes(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        manager.crash()
        assert not manager.healthy
        assert manager.crashes == 1
        assert manager.sessions == {}
        with pytest.raises(RpcTimeout):
            call(env, manager, transport, protocol.GET_PLATFORM_INFO, {},
                 timeout=0.5)
        manager.restart()
        assert manager.healthy
        connect(env, manager, transport, completions)
        info = call(env, manager, transport, protocol.GET_PLATFORM_INFO, {})
        assert info  # served again after the restart

    def test_crash_is_idempotent(self, rig):
        env, manager, transport, completions = rig
        manager.crash()
        manager.crash()
        assert manager.crashes == 1

    def test_kill_worker_reduces_capacity_until_restart(self, rig):
        env, manager, transport, completions = rig
        env.run(until=0.001)  # let the worker processes start
        alive_before = sum(
            1 for w in manager._worker_procs if w.is_alive
        )
        assert alive_before >= 1
        manager.kill_worker(0)
        env.run(until=env.now + 0.01)
        assert sum(
            1 for w in manager._worker_procs if w.is_alive
        ) == alive_before - 1

    def test_structured_code_on_unknown_buffer(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        with pytest.raises(RpcError, match="unknown buffer") as excinfo:
            call(env, manager, transport, protocol.RELEASE_BUFFER,
                 {"buffer_id": 999})
        assert excinfo.value.code == CL_INVALID_MEM_OBJECT

    def test_call_without_session_is_rejected(self, rig):
        # No session means no reply path: the manager counts the message
        # as rejected and the caller's deadline resolves the wait.
        env, manager, transport, completions = rig
        with pytest.raises(RpcTimeout):
            call(env, manager, transport, protocol.CREATE_BUFFER,
                 {"size": 64}, timeout=0.5)
        assert manager.rejected_messages == 1

    def test_duplicate_request_id_replays_cached_reply(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        from repro.rpc import new_request_id

        rid = new_request_id()
        first = call(env, manager, transport, protocol.CREATE_BUFFER,
                     {"size": 128}, request_id=rid)
        second = call(env, manager, transport, protocol.CREATE_BUFFER,
                      {"size": 128}, request_id=rid)
        assert first == second  # replayed, not re-executed
        session = manager.sessions["raw-client"]
        assert len(session.buffers) == 1
        assert manager.board.memory.used == 128

    def test_data_timeout_fails_op_instead_of_wedging_worker(self, rig):
        env, manager, transport, completions = rig
        manager.data_timeout = 0.2
        connect(env, manager, transport, completions)
        buffer_id = call(env, manager, transport, protocol.CREATE_BUFFER,
                         {"size": 64})["buffer_id"]
        # Enqueue a write whose payload never arrives.
        stream(env, manager, transport, protocol.ENQUEUE_WRITE,
               {"queue": 0, "buffer_id": buffer_id, "nbytes": 64}, tag=1)
        stream(env, manager, transport, protocol.FLUSH, {"queue": 0})
        env.run(until=env.now + 2.0)
        notifications = [m for m in completions.inbox.items
                         if m.method == protocol.OP_FAILED]
        assert len(notifications) == 1
        assert "never arrived" in notifications[0].payload["error"]
        # The worker survived: the manager still serves.
        info = call(env, manager, transport, protocol.GET_PLATFORM_INFO, {})
        assert info


# ---------------------------------------------------------------------------
# Heartbeat/lease failure detection at the Registry
# ---------------------------------------------------------------------------

class TestHealthMonitor:
    def test_crash_detected_and_recovery_observed(self):
        env = Environment()
        testbed = build_testbed(env, functional=False)
        registry = AcceleratorsRegistry(
            env, testbed.cluster, list(testbed.managers.values())
        )
        health = registry.enable_health(
            network=testbed.network,
            policy=HealthPolicy(heartbeat_interval=0.1, lease_timeout=0.4),
        )
        victim = testbed.managers["dm-B"]
        script = FaultScript(env)
        script.crash_manager(victim, at=1.0, restart_after=1.0)
        script.arm()

        env.run(until=1.9)
        assert health.failures_detected
        assert health.failures_detected[0][1] == "dm-B"
        assert not registry.devices.get("dm-B").alive
        assert all(v.name != "dm-B" for v in registry.device_views())
        assert registry.device_failures == 1

        env.run(until=3.0)
        assert health.recoveries_detected
        assert registry.devices.get("dm-B").alive
        assert any(v.name == "dm-B" for v in registry.device_views())
        health.stop()

    def test_healthy_managers_keep_their_leases(self):
        env = Environment()
        testbed = build_testbed(env, functional=False)
        registry = AcceleratorsRegistry(
            env, testbed.cluster, list(testbed.managers.values())
        )
        health = registry.enable_health(
            network=testbed.network,
            policy=HealthPolicy(heartbeat_interval=0.1, lease_timeout=0.4),
        )
        env.run(until=3.0)
        assert health.failures_detected == []
        assert all(r.alive for r in registry.devices.all())
        health.stop()

"""Coalesced heartbeats: same detection semantics, O(1) periodic events.

``HealthPolicy(coalesce=True)`` moves lease renewal from one process (and
one network message) per board onto a shared :class:`~repro.sim.TimerWheel`
tick.  These tests pin the two halves of that trade: failure/recovery
detection must behave exactly like the per-board protocol, and the DES
event volume must stop growing with the number of watched boards.
"""

from repro.cluster import build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.faults import FaultScript, HealthPolicy
from repro.sim import Environment, TimerWheel


def make_rig(coalesce: bool):
    env = Environment()
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values())
    )
    policy = HealthPolicy(heartbeat_interval=0.1, lease_timeout=0.4,
                          coalesce=coalesce)
    wheel = TimerWheel(env, tick=0.1) if coalesce else None
    health = registry.enable_health(
        network=testbed.network, policy=policy, wheel=wheel
    )
    return env, testbed, registry, health


class TestDetectionParity:
    def test_crash_detected_and_recovery_observed(self):
        env, testbed, registry, health = make_rig(coalesce=True)
        victim = testbed.managers["dm-B"]
        script = FaultScript(env)
        script.crash_manager(victim, at=1.0, restart_after=1.0)
        script.arm()

        env.run(until=1.9)
        assert health.failures_detected
        assert health.failures_detected[0][1] == "dm-B"
        assert not registry.devices.get("dm-B").alive
        assert all(v.name != "dm-B" for v in registry.device_views())
        assert registry.device_failures == 1

        env.run(until=3.0)
        assert health.recoveries_detected
        assert registry.devices.get("dm-B").alive
        assert any(v.name == "dm-B" for v in registry.device_views())
        health.stop()

    def test_healthy_managers_keep_their_leases(self):
        env, _testbed, registry, health = make_rig(coalesce=True)
        env.run(until=3.0)
        assert health.failures_detected == []
        assert all(r.alive for r in registry.devices.all())
        health.stop()

    def test_detection_time_matches_per_board_mode(self):
        """Crash at t=1.0 must expire the lease at the same simulated
        time (within one heartbeat interval) in both modes."""
        detected = {}
        for coalesce in (False, True):
            env, testbed, _registry, health = make_rig(coalesce)
            script = FaultScript(env)
            script.crash_manager(testbed.managers["dm-B"], at=1.0,
                                 restart_after=10.0)
            script.arm()
            env.run(until=3.0)
            assert health.failures_detected
            detected[coalesce] = health.failures_detected[0][0]
            health.stop()
        assert abs(detected[True] - detected[False]) <= 0.1


class TestEventVolume:
    def test_coalesced_mode_schedules_fewer_events(self):
        """Per-board mode pays O(boards) events per heartbeat interval
        (timeout + network delivery each); coalesced pays O(1)."""
        walls = {}
        for coalesce in (False, True):
            env, _testbed, _registry, health = make_rig(coalesce)
            start = env._eid
            env.run(until=10.0)
            walls[coalesce] = env._eid - start
            health.stop()
        assert walls[True] < walls[False] / 2

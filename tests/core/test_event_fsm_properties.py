"""Property test: the remote event FSM always resolves, never wedges.

Whatever notification sequence the (possibly faulty) network delivers —
reordered, duplicated, truncated, or garbage — the client-side event state
machine must never raise out of the connection thread, must reach an
absorbing COMPLETE or FAILED state on any sequence that can end it, and
must release its tag from the connection routing table exactly once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device_manager import protocol
from repro.core.remote_lib.events import FsmState, RemoteEventMachine
from repro.ocl.objects import CLEvent
from repro.ocl.types import CommandType
from repro.rpc import Message
from repro.sim import Environment

METHODS = [
    protocol.OP_ENQUEUED,
    protocol.OP_COMPLETE,
    protocol.OP_FAILED,
    "Bogus",  # a method the FSM was never taught
]


class _StubConnection:
    def __init__(self):
        self.streamed = []
        self.forgotten = []

    def stream_write_data(self, tag, payload, nbytes):
        self.streamed.append(tag)

    def forget(self, tag):
        self.forgotten.append(tag)


def _machine(is_write):
    env = Environment()
    cl_event = CLEvent(env, CommandType.WRITE_BUFFER if is_write
                       else CommandType.READ_BUFFER)
    connection = _StubConnection()
    if is_write:
        machine = RemoteEventMachine(connection, cl_event,
                                     write_payload=b"x" * 8, write_nbytes=8)
    else:
        machine = RemoteEventMachine(connection, cl_event)
    return machine, cl_event, connection


@given(
    methods=st.lists(st.sampled_from(METHODS), min_size=1, max_size=12),
    is_write=st.booleans(),
)
@settings(max_examples=300, deadline=None)
def test_fsm_terminates_complete_or_failed(methods, is_write):
    machine, cl_event, connection = _machine(is_write)

    for method in methods:
        was_terminal = machine.terminal
        state_before = machine.state
        status_before = cl_event.status
        machine.on_notification(Message(method=method, sender="dm"))
        if was_terminal:
            # COMPLETE/FAILED are absorbing: stragglers change nothing.
            assert machine.state is state_before
            assert cl_event.status == status_before

    # The only sequence that may leave the machine in flight is a single
    # OP_ENQUEUED (command accepted, completion still pending).
    in_flight = methods == [protocol.OP_ENQUEUED]
    if in_flight:
        assert not machine.terminal
        expected = FsmState.BUFFER if is_write else FsmState.FIRST
        assert machine.state is expected
    else:
        assert machine.terminal
        assert machine.state in (FsmState.COMPLETE, FsmState.FAILED)
        assert cl_event.is_complete
        # The tag is released exactly once, however noisy the tail was.
        assert connection.forgotten == [machine.tag]

    if is_write and methods[0] == protocol.OP_ENQUEUED:
        # The BUFFER step pushed the write payload when the manager
        # signalled readiness.
        assert connection.streamed == [machine.tag]

    # Nothing schedulable left behind: a failed completion with no waiter
    # must not blow up a later env.run().
    cl_event.completion.defused = True

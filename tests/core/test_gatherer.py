"""Tests for the Metrics Gatherer (Registry's view of Prometheus data)."""

import pytest

from repro.core.registry import MetricsGatherer
from repro.metrics import MetricsRegistry, Scraper
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    scraper = Scraper(env, interval=1.0)
    registry = MetricsRegistry(namespace="dm")
    busy = registry.counter("busy_seconds_total")
    client_busy = registry.counter("client_busy_seconds_total",
                                   labelnames=["client"])
    clients = registry.gauge("connected_clients")
    depth = registry.gauge("task_queue_depth")
    scraper.add_target("dm-B", registry, node="B")
    gatherer = MetricsGatherer(scraper, window=10.0)
    return env, scraper, gatherer, busy, client_busy, clients, depth


class TestUtilization:
    def test_fresh_device_is_idle(self, setup):
        env, scraper, gatherer, *_ = setup
        assert gatherer.utilization("dm-B") == 0.0

    def test_utilization_from_busy_rate(self, setup):
        env, scraper, gatherer, busy, *_ = setup

        def device():
            while True:
                busy.inc(0.6)
                yield env.timeout(1.0)

        env.process(device())
        env.run(until=20.0)
        assert gatherer.utilization("dm-B") == pytest.approx(0.6, rel=0.05)

    def test_per_function_utilization(self, setup):
        env, scraper, gatherer, busy, client_busy, *_ = setup

        def device():
            while True:
                client_busy.labels("fn-a-i1").inc(0.3)
                client_busy.labels("fn-b-i1").inc(0.1)
                yield env.timeout(1.0)

        env.process(device())
        env.run(until=20.0)
        assert gatherer.function_utilization("dm-B", "fn-a-i1") == \
            pytest.approx(0.3, rel=0.05)
        assert gatherer.function_utilization("dm-B", "fn-b-i1") == \
            pytest.approx(0.1, rel=0.05)

    def test_unknown_client_is_zero(self, setup):
        env, scraper, gatherer, *_ = setup
        env.run(until=3.0)
        assert gatherer.function_utilization("dm-B", "ghost") == 0.0


class TestGaugeMetrics:
    def test_connected_functions_latest(self, setup):
        env, scraper, gatherer, busy, client_busy, clients, depth = setup
        clients.set(3)
        env.run(until=2.0)
        assert gatherer.connected_functions("dm-B") == 3

    def test_queue_depth_latest(self, setup):
        env, scraper, gatherer, busy, client_busy, clients, depth = setup
        depth.set(7)
        env.run(until=2.0)
        assert gatherer.queue_depth("dm-B") == 7.0

    def test_device_metrics_bundle(self, setup):
        env, scraper, gatherer, busy, client_busy, clients, depth = setup
        clients.set(2)
        env.run(until=2.0)
        metrics = gatherer.device_metrics("dm-B")
        assert set(metrics) == {"utilization", "connected_functions",
                                "queue_depth"}
        assert metrics["connected_functions"] == 2.0

    def test_unknown_device_is_empty(self, setup):
        env, scraper, gatherer, *_ = setup
        env.run(until=2.0)
        assert gatherer.utilization("dm-Z") == 0.0
        assert gatherer.connected_functions("dm-Z") == 0

"""Unit tests for Algorithm 1 (the device allocation algorithm)."""

import pytest

from repro.cluster import DeviceQuery
from repro.core.registry import (
    AllocationError,
    DeviceView,
    MetricFilter,
    allocate,
    filterby_compatibility,
    filterby_metrics,
    not_compatible,
    orderby_metrics_and_acc,
    redistribution_plan,
)

VENDOR = "Intel(R) Corporation"
PLATFORM = "Intel(R) FPGA SDK for OpenCL(TM)"
ALL_BITSTREAMS = ("sobel", "mm", "pipecnn_alexnet")


def view(name, node, bitstream=None, metrics=None, workloads=()):
    return DeviceView(
        name=name, node=node, vendor=VENDOR, platform=PLATFORM,
        bitstream=bitstream, available_bitstreams=ALL_BITSTREAMS,
        metrics=metrics or {}, workloads=tuple(workloads),
    )


class TestFilters:
    def test_vendor_mismatch_filtered(self):
        query = DeviceQuery(vendor="Xilinx", accelerator="sobel")
        assert filterby_compatibility([view("dm-A", "A")], query) == []

    def test_unavailable_accelerator_filtered(self):
        query = DeviceQuery(accelerator="unknown-acc")
        assert filterby_compatibility([view("dm-A", "A")], query) == []

    def test_compatible_device_kept(self):
        query = DeviceQuery(vendor="Intel", accelerator="sobel")
        devices = [view("dm-A", "A")]
        assert filterby_compatibility(devices, query) == devices

    def test_metrics_filter_drops_hot_devices(self):
        hot = view("dm-A", "A", metrics={"utilization": 0.95})
        cool = view("dm-B", "B", metrics={"utilization": 0.10})
        kept = filterby_metrics(
            [hot, cool], [MetricFilter.below("utilization", 0.9)]
        )
        assert kept == [cool]

    def test_missing_metric_defaults_to_zero(self):
        device = view("dm-A", "A")
        kept = filterby_metrics(
            [device], [MetricFilter.below("utilization", 0.9)]
        )
        assert kept == [device]


class TestOrdering:
    def test_orders_by_metric_ascending(self):
        query = DeviceQuery(accelerator="sobel")
        busy = view("dm-A", "A", "sobel", {"connected_functions": 3})
        idle = view("dm-B", "B", "sobel", {"connected_functions": 0})
        ordered = orderby_metrics_and_acc(
            [busy, idle], ("connected_functions",), query
        )
        assert [d.name for d in ordered] == ["dm-B", "dm-A"]

    def test_accelerator_compatibility_breaks_ties(self):
        query = DeviceQuery(accelerator="sobel")
        needs_reconfig = view("dm-A", "A", "mm", {"connected_functions": 1})
        ready = view("dm-B", "B", "sobel", {"connected_functions": 1})
        ordered = orderby_metrics_and_acc(
            [needs_reconfig, ready], ("connected_functions",), query
        )
        assert [d.name for d in ordered] == ["dm-B", "dm-A"]

    def test_multiple_metrics_ordering(self):
        query = DeviceQuery(accelerator="sobel")
        a = view("dm-A", "A", "sobel",
                 {"connected_functions": 1, "utilization": 0.8})
        b = view("dm-B", "B", "sobel",
                 {"connected_functions": 1, "utilization": 0.2})
        ordered = orderby_metrics_and_acc(
            [a, b], ("connected_functions", "utilization"), query
        )
        assert [d.name for d in ordered] == ["dm-B", "dm-A"]


class TestRedistribution:
    def test_no_conflicts_is_empty_plan(self):
        query = DeviceQuery(accelerator="mm")
        device = view("dm-A", "A", "sobel",
                      workloads=[("fn-1", "mm")])  # wants mm anyway
        plan = redistribution_plan(device, query, [device])
        assert plan == []

    def test_conflicting_workload_moves_to_matching_device(self):
        query = DeviceQuery(accelerator="mm")
        source = view("dm-A", "A", "sobel", workloads=[("sob-1", "sobel")])
        target = view("dm-B", "B", "sobel")
        plan = redistribution_plan(source, query, [source, target])
        assert plan == [("sob-1", "dm-B")]

    def test_blank_device_accepts_moves(self):
        query = DeviceQuery(accelerator="mm")
        source = view("dm-A", "A", "sobel", workloads=[("sob-1", "sobel")])
        blank = view("dm-B", "B", None)
        plan = redistribution_plan(source, query, [source, blank])
        assert plan == [("sob-1", "dm-B")]

    def test_unmovable_workload_returns_none(self):
        query = DeviceQuery(accelerator="mm")
        source = view("dm-A", "A", "sobel", workloads=[("sob-1", "sobel")])
        other = view("dm-B", "B", "mm", workloads=[("mm-1", "mm")])
        assert redistribution_plan(source, query, [source, other]) is None


class TestAllocate:
    def test_prefers_already_configured_device(self):
        query = DeviceQuery(accelerator="sobel")
        decision = allocate(query, "", [
            view("dm-A", "A", "mm"),
            view("dm-B", "B", "sobel"),
        ])
        assert decision.device.name == "dm-B"
        assert not decision.needs_reconfiguration
        assert decision.node == "B"

    def test_least_connected_device_wins(self):
        query = DeviceQuery(accelerator="sobel")
        decision = allocate(query, "", [
            view("dm-A", "A", "sobel", {"connected_functions": 2}),
            view("dm-B", "B", "sobel", {"connected_functions": 0}),
            view("dm-C", "C", "sobel", {"connected_functions": 1}),
        ])
        assert decision.device.name == "dm-B"

    def test_blank_device_flagged_for_reconfiguration(self):
        query = DeviceQuery(accelerator="sobel")
        decision = allocate(query, "", [view("dm-A", "A", None)])
        assert decision.needs_reconfiguration
        assert decision.redistribution == []

    def test_busy_incompatible_device_triggers_redistribution(self):
        query = DeviceQuery(accelerator="mm")
        decision = allocate(query, "", [
            view("dm-A", "A", "sobel",
                 {"connected_functions": 1},
                 workloads=[("sob-1", "sobel")]),
            view("dm-B", "B", "sobel", {"connected_functions": 2}),
        ])
        assert decision.device.name == "dm-A"
        assert decision.needs_reconfiguration
        assert decision.redistribution == [("sob-1", "dm-B")]

    def test_skips_non_redistributable_device(self):
        query = DeviceQuery(accelerator="mm")
        # dm-A sorts first but can't be freed (its sobel workload has
        # nowhere to go); the algorithm walks on to dm-B, which already
        # runs mm.
        decision = allocate(query, "", [
            view("dm-A", "A", "sobel",
                 {"connected_functions": 0},
                 workloads=[("sob-1", "sobel")]),
            view("dm-B", "B", "mm", {"connected_functions": 1}),
        ])
        assert decision.device.name == "dm-B"
        assert not decision.needs_reconfiguration

    def test_blank_device_absorbs_redistributed_workloads(self):
        query = DeviceQuery(accelerator="mm")
        # dm-A sorts first and its sobel workload can move to blank dm-B,
        # so dm-A is chosen with a redistribution plan.
        decision = allocate(query, "", [
            view("dm-A", "A", "sobel",
                 {"connected_functions": 0},
                 workloads=[("sob-1", "sobel")]),
            view("dm-B", "B", None, {"connected_functions": 1}),
        ])
        assert decision.device.name == "dm-A"
        assert decision.redistribution == [("sob-1", "dm-B")]

    def test_no_device_found_raises(self):
        query = DeviceQuery(accelerator="mm")
        with pytest.raises(AllocationError):
            allocate(query, "", [
                view("dm-A", "A", "sobel",
                     workloads=[("sob-1", "sobel")]),
            ])

    def test_node_hint_respected(self):
        query = DeviceQuery(accelerator="sobel")
        decision = allocate(query, "C", [view("dm-A", "A", "sobel")])
        assert decision.node == "C"

    def test_empty_accelerator_never_reconfigures(self):
        query = DeviceQuery()
        device = view("dm-A", "A", "sobel")
        assert not not_compatible(device, query)
        decision = allocate(query, "", [device])
        assert not decision.needs_reconfiguration

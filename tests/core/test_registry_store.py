"""The Registry's durable medium: WAL, snapshots, wire format, replication.

Pure data-structure tests — no simulation clock.  The wire format must be
bit-deterministic (``to_wire → from_wire → to_wire`` identical), append /
snapshot / truncate must keep the sequence and epoch bookkeeping exact,
and the replication delta must be idempotent under duplicate delivery.
"""

import pytest

from repro.core.registry.store import (
    MAGIC,
    RegistryStore,
    StoreError,
    WalRecord,
)


def populated() -> RegistryStore:
    store = RegistryStore()
    store.record_epoch(1)
    store.append("register_manager", manager="dm-A")
    store.append("register_function", function="fn",
                 query=["Intel", "", "sobel"])
    store.append("admit", instance="fn-i1", function="fn",
                 node="n0000", device="dm-A", pending=None)
    return store


class TestWalAppend:
    def test_sequences_are_monotonic(self):
        store = populated()
        assert [r.seq for r in store.wal] == [1, 2, 3, 4]
        assert store.seq == 4
        assert store.appends == 4
        assert store.appended_bytes > 0

    def test_epoch_rides_the_wal(self):
        store = populated()
        assert store.epoch == 1
        store.record_epoch(5)
        assert store.epoch == 5
        store.record_epoch(2)  # lower epochs never regress the counter
        assert store.epoch == 5

    def test_record_meta_round_trip(self):
        record = WalRecord(seq=7, op="admit", args={"instance": "x"})
        assert WalRecord.from_meta(record.to_meta()) == record
        assert record.nbytes == len(
            str(record.to_meta()).encode()
        ) or record.nbytes > 0  # deterministic, compact JSON


class TestSnapshot:
    def test_snapshot_truncates_wal(self):
        store = populated()
        store.take_snapshot({"epoch": 1, "devices": {}})
        assert len(store.wal) == 0
        assert store.snapshot_seq == 4
        assert store.seq == 4  # sequence survives the truncation
        assert store.truncated_records == 4
        store.append("admit", instance="fn-i2", function="fn",
                     node="n0001", device="dm-B", pending=None)
        assert store.wal[0].seq == 5

    def test_replay_returns_snapshot_and_suffix(self):
        store = populated()
        store.take_snapshot({"marker": True})
        store.append("device_dead", manager="dm-A")
        snapshot, records = store.replay()
        assert snapshot == {"marker": True}
        assert [r.op for r in records] == ["device_dead"]


class TestTruncate:
    def test_lost_tail(self):
        store = populated()
        lost = store.truncate(2)
        assert lost == 2
        assert store.seq == 2
        assert [r.op for r in store.wal] == ["epoch", "register_manager"]

    def test_epoch_recomputed_from_kept_records(self):
        store = populated()
        store.record_epoch(9)
        assert store.epoch == 9
        store.truncate(4)  # drops the epoch-9 record
        assert store.epoch == 1

    def test_truncate_to_snapshot(self):
        store = populated()
        store.take_snapshot({"epoch": 1})
        store.append("device_dead", manager="dm-A")
        store.truncate(store.snapshot_seq)
        assert store.seq == store.snapshot_seq
        assert store.epoch == 1  # recovered from the snapshot


class TestReplicationDelta:
    def test_records_only_delta(self):
        leader = populated()
        snapshot, records, nbytes = leader.delta_since(2)
        assert snapshot is None
        assert [r.seq for r in records] == [3, 4]
        assert nbytes == sum(r.nbytes for r in records)

    def test_snapshot_shipped_when_replica_predates_it(self):
        leader = populated()
        leader.take_snapshot({"epoch": 1})
        leader.append("device_dead", manager="dm-A")
        snapshot, records, nbytes = leader.delta_since(1)
        assert snapshot == {"epoch": 1}
        assert [r.op for r in records] == ["device_dead"]
        assert nbytes > 0

    def test_ingest_is_idempotent(self):
        leader = populated()
        replica = RegistryStore()
        snapshot, records, _ = leader.delta_since(replica.seq)
        assert replica.ingest_delta(snapshot, records,
                                    snapshot_seq=leader.snapshot_seq,
                                    epoch=leader.epoch) == 4
        # Duplicate delivery of the same delta applies nothing new.
        assert replica.ingest_delta(snapshot, records,
                                    snapshot_seq=leader.snapshot_seq,
                                    epoch=leader.epoch) == 0
        assert replica.seq == leader.seq
        assert replica.epoch == leader.epoch

    def test_replica_converges_via_snapshot(self):
        leader = populated()
        leader.take_snapshot({"epoch": 1, "x": 1})
        leader.append("device_dead", manager="dm-A")
        replica = RegistryStore()
        snapshot, records, _ = leader.delta_since(replica.seq)
        replica.ingest_delta(snapshot, records,
                             snapshot_seq=leader.snapshot_seq,
                             epoch=leader.epoch)
        assert replica.to_wire() == leader.to_wire()


class TestWireFormat:
    def test_round_trip_is_bit_identical(self):
        store = populated()
        store.take_snapshot({"epoch": 1, "devices": {"dm-A": {}}})
        store.append("device_dead", manager="dm-A")
        wire = store.to_wire()
        assert wire.startswith(MAGIC)
        again = RegistryStore.from_wire(wire)
        assert again.to_wire() == wire
        assert again.seq == store.seq
        assert again.epoch == store.epoch
        assert again.wal == store.wal

    def test_clone_is_independent(self):
        store = populated()
        clone = store.clone()
        clone.append("device_dead", manager="dm-A")
        assert len(clone) == len(store) + 1

    def test_bad_magic_rejected(self):
        with pytest.raises(StoreError):
            RegistryStore.from_wire(b"NOPE" + b"\x00" * 16)

    def test_corrupt_payload_rejected(self):
        wire = populated().to_wire()
        with pytest.raises(StoreError):
            RegistryStore.from_wire(
                wire[: len(MAGIC) + 8] + b"{" * (len(wire) - len(MAGIC) - 8)
            )

    def test_wire_nbytes_and_len(self):
        store = populated()
        assert store.wire_nbytes == len(store.to_wire())
        assert len(store) == 4

"""Protocol-level Device Manager tests (raw messages, no remote library).

Exercises failure paths a well-behaved client never takes: unknown
resources, unknown methods, failed operations, disconnects with queued
work, and the batching-off mode.
"""

import pytest

from repro.core.device_manager import DeviceManager, protocol
from repro.fpga import FPGABoard, standard_library
from repro.rpc import Message, RpcEndpoint, RpcError, ShmTransport, unary_call
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    from repro.rpc import Network

    network = Network(env)
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, standard_library(),
                            network, node)
    transport = ShmTransport(env, network, node, node)
    completions = RpcEndpoint(env, "client/completions")
    return env, manager, transport, completions


def connect(env, manager, transport, completions, client="raw-client"):
    def flow():
        result = yield from unary_call(
            transport, manager.endpoint, protocol.CONNECT,
            {"transport": transport, "completion_queue": completions},
            sender=client,
        )
        return result

    return env.run(until=env.process(flow()))


def call(env, manager, transport, method, payload, client="raw-client"):
    def flow():
        result = yield from unary_call(
            transport, manager.endpoint, method, payload, sender=client
        )
        return result

    return env.run(until=env.process(flow()))


def stream(env, manager, transport, method, payload, tag=None,
           client="raw-client"):
    """Deliver a streamed (no-reply) message with transport delay."""

    def flow():
        yield from transport.control_to_server()
        manager.endpoint.deliver(Message(
            method=method, payload=payload, sender=client, tag=tag
        ))

    env.run(until=env.process(flow()))


class TestUnaryErrors:
    def test_unknown_method_replies_error(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        with pytest.raises(RpcError, match="unknown method"):
            call(env, manager, transport, "NoSuchMethod", {})

    def test_release_unknown_buffer_replies_error(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        with pytest.raises(RpcError, match="unknown buffer"):
            call(env, manager, transport, protocol.RELEASE_BUFFER,
                 {"buffer_id": 999})

    def test_unknown_bitstream_build_replies_error(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        with pytest.raises(RpcError, match="unknown bitstream"):
            call(env, manager, transport, protocol.BUILD_PROGRAM,
                 {"binary": "missing"})

    def test_unknown_kernel_replies_error(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        with pytest.raises(RpcError):
            call(env, manager, transport, protocol.CREATE_KERNEL,
                 {"binary": "sobel", "name": "missing_kernel"})

    def test_oom_create_buffer_replies_error(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        with pytest.raises(RpcError):
            call(env, manager, transport, protocol.CREATE_BUFFER,
                 {"size": 16 * 1024 ** 3})


class TestOperationFailures:
    def test_kernel_with_unknown_id_notifies_failure(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        stream(env, manager, transport, protocol.ENQUEUE_KERNEL,
               {"queue": 0, "kernel_id": 42, "args": []}, tag=7)
        stream(env, manager, transport, protocol.FLUSH, {"queue": 0})

        def collect():
            while True:
                message = yield completions.inbox.get()
                if message.method == protocol.OP_FAILED:
                    return message

        message = env.run(until=env.process(collect()))
        assert message.tag == 7
        assert "no kernel" in message.payload["error"]

    def test_read_unknown_buffer_notifies_failure(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        stream(env, manager, transport, protocol.ENQUEUE_READ,
               {"queue": 0, "buffer_id": 5, "nbytes": 4}, tag=3)
        stream(env, manager, transport, protocol.FLUSH, {"queue": 0})

        def collect():
            while True:
                message = yield completions.inbox.get()
                if message.method == protocol.OP_FAILED:
                    return message

        message = env.run(until=env.process(collect()))
        assert message.tag == 3

    def test_mismatched_bitstream_kernel_fails(self, rig):
        """A kernel registered for one bitstream fails if another is live."""
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        result = call(env, manager, transport, protocol.CREATE_KERNEL,
                      {"binary": "sobel", "name": "sobel"})
        call(env, manager, transport, protocol.BUILD_PROGRAM,
             {"binary": "mm"})  # board now runs mm
        stream(env, manager, transport, protocol.ENQUEUE_KERNEL,
               {"queue": 0, "kernel_id": result["kernel_id"], "args": []},
               tag=9)
        stream(env, manager, transport, protocol.FLUSH, {"queue": 0})

        def collect():
            while True:
                message = yield completions.inbox.get()
                if message.method == protocol.OP_FAILED:
                    return message

        message = env.run(until=env.process(collect()))
        assert "needs bitstream" in message.payload["error"]


class TestLifecycle:
    def test_disconnect_discards_open_tasks(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        result = call(env, manager, transport, protocol.CREATE_BUFFER,
                      {"size": 64})
        stream(env, manager, transport, protocol.ENQUEUE_READ,
               {"queue": 0, "buffer_id": result["buffer_id"], "nbytes": 4},
               tag=1)
        # Never flushed; disconnect must clean up.
        call(env, manager, transport, protocol.DISCONNECT, {})
        assert manager.connected_clients == 0
        assert manager.accumulator.open_count() == 0
        assert manager.board.memory.used == 0

    def test_queued_task_of_disconnected_client_is_skipped(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions)
        result = call(env, manager, transport, protocol.CREATE_BUFFER,
                      {"size": 64})
        stream(env, manager, transport, protocol.ENQUEUE_READ,
               {"queue": 0, "buffer_id": result["buffer_id"], "nbytes": 64},
               tag=1)
        stream(env, manager, transport, protocol.FLUSH, {"queue": 0})
        call(env, manager, transport, protocol.DISCONNECT, {})
        env.run(until=env.now + 1.0)
        # No crash; the worker dropped the orphaned task.
        assert manager.metrics.get("tasks_total").value >= 0

    def test_second_client_gets_distinct_session(self, rig):
        env, manager, transport, completions = rig
        connect(env, manager, transport, completions, client="a")
        other_completions = RpcEndpoint(env, "b/completions")
        connect(env, manager, transport, other_completions, client="b")
        assert manager.connected_clients == 2
        assert set(manager.sessions) == {"a", "b"}


class TestBatchingFlag:
    def test_batching_off_submits_per_op_tasks(self, rig):
        env, manager, transport, completions = rig
        manager.batching = False
        connect(env, manager, transport, completions)
        result = call(env, manager, transport, protocol.CREATE_BUFFER,
                      {"size": 64})
        for tag in (1, 2, 3):
            stream(env, manager, transport, protocol.ENQUEUE_READ,
                   {"queue": 0, "buffer_id": result["buffer_id"],
                    "nbytes": 4}, tag=tag)
        env.run(until=env.now + 1.0)
        # Three ops → three tasks, no flush needed.
        assert manager.metrics.get("tasks_total").value == 3

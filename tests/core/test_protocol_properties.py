"""Property-based tests of the remote protocol's ordering guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.ocl import Context
from repro.rpc import Network
from repro.sim import Environment

BUF_BYTES = 64


def _rig():
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)
    return env, network, library, node, manager


def _payload(seed: int) -> bytes:
    return bytes((seed * 31 + i) % 256 for i in range(BUF_BYTES))


class TestFlushBoundaryProperties:
    @given(
        # Writes annotated with "flush after this one?"; final read always
        # observes the LAST write regardless of flush grouping.
        writes=st.lists(
            st.tuples(st.integers(min_value=0, max_value=1000),
                      st.booleans()),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_last_write_wins_for_any_flush_grouping(self, writes):
        env, network, library, node, manager = _rig()

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(BUF_BYTES)
            for seed, flush in writes:
                queue.enqueue_write_buffer(buffer, _payload(seed))
                if flush:
                    queue.flush()
            data = yield from queue.read_buffer(buffer)
            return data

        data = env.run(until=env.process(flow()))
        assert data == _payload(writes[-1][0])

    @given(
        group_sizes=st.lists(st.integers(min_value=1, max_value=4),
                             min_size=1, max_size=5)
    )
    @settings(max_examples=20, deadline=None)
    def test_task_count_matches_flush_groups(self, group_sizes):
        """Each nonempty flush group becomes exactly one task."""
        env, network, library, node, manager = _rig()

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(BUF_BYTES)
            events = []
            for size in group_sizes:
                for index in range(size):
                    events.append(
                        queue.enqueue_write_buffer(buffer,
                                                   _payload(index))
                    )
                queue.flush()
            from repro.ocl import wait_for_events

            yield wait_for_events(events)

        env.run(until=env.process(flow()))
        assert manager.metrics.get("tasks_total").value == len(group_sizes)
        total_ops = sum(group_sizes)
        assert manager.metrics.get("ops_total").labels("write").value == \
            total_ops

    @given(seeds=st.lists(st.integers(min_value=0, max_value=1000),
                          min_size=2, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_reads_observe_program_order(self, seeds):
        """write_i → read_i pairs: every read returns its own write."""
        env, network, library, node, manager = _rig()

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(BUF_BYTES)
            reads = []
            for seed in seeds:
                queue.enqueue_write_buffer(buffer, _payload(seed))
                reads.append(queue.enqueue_read_buffer(buffer))
            queue.flush()
            from repro.ocl import wait_for_events

            yield wait_for_events(reads)
            return [event.value for event in reads]

        results = env.run(until=env.process(flow()))
        assert results == [_payload(seed) for seed in seeds]

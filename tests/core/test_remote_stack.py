"""Integration tests: Remote OpenCL Library ↔ Device Manager ↔ board.

These exercise the paper's transparency claim — identical host code against
the native vendor runtime and against BlastFunction — and the Device
Manager's task batching, isolation, reconfiguration and metrics.
"""

import numpy as np
import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import FsmState, remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.kernels import sobel_reference
from repro.ocl import CLError, Context, native_platform
from repro.rpc import Network
from repro.sim import Environment


@pytest.fixture
def rig():
    """One node with a board, a Device Manager and the standard library."""
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, name="fpga-B", functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)
    return env, network, library, node, board, manager


def run(env, generator):
    return env.run(until=env.process(generator))


def connect(env, network, library, node, manager, client="fn-1",
            prefer_shm=True):
    """Process: obtain a remote platform for a client on `node`."""
    platform = yield from remote_platform(
        env, client, node, manager, network, library, prefer_shm=prefer_shm
    )
    return platform


class TestConnection:
    def test_platform_identifies_blastfunction(self, rig):
        env, network, library, node, board, manager = rig
        platform = run(env, connect(env, network, library, node, manager))
        assert "BlastFunction" in platform.name
        assert manager.connected_clients == 1

    def test_device_info_reports_board(self, rig):
        env, network, library, node, board, manager = rig
        platform = run(env, connect(env, network, library, node, manager))
        device = platform.get_devices()[0]
        assert "DE5a-Net" in device.name
        assert device.global_mem_size == board.spec.memory_bytes


class TestDataPath:
    def test_write_read_roundtrip(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(16)
            yield from queue.write_buffer(buffer, b"0123456789abcdef")
            data = yield from queue.read_buffer(buffer)
            return data

        assert run(env, flow(env)) == b"0123456789abcdef"

    def test_buffer_allocated_on_board(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            context.create_buffer(4096)
            # Give the eager allocation a moment to land server-side.
            yield env.timeout(0.01)

        run(env, flow(env))
        assert board.memory.used == 4096

    def test_oom_fails_dependent_operations(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            queue = context.create_queue()
            huge = context.create_buffer(board.spec.memory_bytes + 1)
            try:
                yield from queue.write_buffer(huge, nbytes=64)
            except CLError as exc:
                return exc
            return None

        error = run(env, flow(env))
        assert error is not None


class TestTransparency:
    """The same host function body runs on either platform."""

    @staticmethod
    def sobel_host(env, platform, image):
        """Host code written once against the OpenCL object model."""
        height, width = image.shape
        context = Context(platform.get_devices())
        queue = context.create_queue()
        program = context.create_program("sobel")
        yield from program.build()
        kernel = program.create_kernel("sobel")
        in_buf = context.create_buffer(image.nbytes)
        out_buf = context.create_buffer(image.nbytes)
        kernel.set_args(in_buf, out_buf, width, height)
        yield from queue.write_buffer(in_buf, image)
        yield from queue.run_kernel(kernel)
        data = yield from queue.read_buffer(out_buf)
        context.release()
        return np.frombuffer(data, dtype=np.uint32).reshape(image.shape)

    def test_identical_results_native_vs_remote(self, rig):
        env, network, library, node, board, manager = rig
        rng = np.random.default_rng(11)
        image = rng.integers(0, 4096, size=(16, 16), dtype=np.uint32)

        def remote_flow(env):
            platform = yield from connect(env, network, library, node, manager)
            result = yield from self.sobel_host(env, platform, image)
            return result

        remote_result = run(env, remote_flow(env))

        env2 = Environment()
        board2 = FPGABoard(env2, functional=True)
        platform2 = native_platform(env2, board2, standard_library())

        def native_flow(env):
            result = yield from self.sobel_host(env, platform2, image)
            return result

        native_result = env2.run(until=env2.process(native_flow(env2)))
        np.testing.assert_array_equal(remote_result, native_result)
        np.testing.assert_array_equal(remote_result, sobel_reference(image))

    def test_remote_overhead_is_small_constant(self, rig):
        """Fig. 4(b): BlastFunction shm ≈ native + ~2 ms."""
        env, network, library, node, board, manager = rig
        image = np.zeros((64, 64), dtype=np.uint32)

        def remote_flow(env):
            platform = yield from connect(env, network, library, node, manager)
            start = env.now
            yield from self.sobel_host(env, platform, image)
            return env.now - start

        remote_time = run(env, remote_flow(env))

        env2 = Environment()
        board2 = FPGABoard(env2, functional=True)
        platform2 = native_platform(env2, board2, standard_library())

        def native_flow(env):
            start = env.now
            yield from self.sobel_host(env, platform2, image)
            return env.now - start

        native_time = env2.run(until=env2.process(native_flow(env2)))
        overhead = remote_time - native_time
        assert 0.5e-3 < overhead < 4e-3

    def test_grpc_slower_than_shm(self, rig):
        env, network, library, node, board, manager = rig
        image = np.zeros((256, 256), dtype=np.uint32)

        def flow(env, prefer_shm):
            platform = yield from remote_platform(
                env, f"fn-shm-{prefer_shm}", node, manager, network, library,
                prefer_shm=prefer_shm,
            )
            start = env.now
            yield from self.sobel_host(env, platform, image)
            return env.now - start

        run(env, flow(env, True))  # warm-up: pays the one-time reconfiguration
        shm_time = run(env, flow(env, True))
        grpc_time = run(env, flow(env, False))
        assert grpc_time > shm_time


class TestTaskBatching:
    def test_tasks_execute_atomically_fifo(self, rig):
        """Two clients' tasks must not interleave on the board."""
        env, network, library, node, board, manager = rig
        order = []
        board.add_busy_listener(
            lambda dt, kind: order.append((manager._current_client, kind))
        )

        # Expose the executing client through a tiny manager hook.
        manager._current_client = None
        original = manager._run_operation

        def tracking_run(operation):
            manager._current_client = operation.client
            ok = yield from original(operation)
            return ok

        manager._run_operation = tracking_run

        def client_flow(env, name):
            platform = yield from connect(
                env, network, library, node, manager, client=name
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            program = context.create_program("sobel")
            yield from program.build()
            kernel = program.create_kernel("sobel")
            nbytes = 128 * 128 * 4
            in_buf = context.create_buffer(nbytes)
            out_buf = context.create_buffer(nbytes)
            kernel.set_args(in_buf, out_buf, 128, 128)
            queue.enqueue_write_buffer(in_buf, nbytes=nbytes)
            queue.enqueue_kernel(kernel)
            queue.enqueue_read_buffer(out_buf)
            yield from queue.finish()

        def main(env):
            yield env.process(client_flow(env, "fn-a")) & env.process(
                client_flow(env, "fn-b")
            )

        run(env, main(env))
        # Strip reconfigurations; remaining ops must form contiguous
        # per-client runs of 3 (write, kernel, read).
        op_clients = [client for client, kind in order if kind != "reconfigure"]
        assert len(op_clients) == 6
        assert op_clients[:3] == [op_clients[0]] * 3
        assert op_clients[3:] == [op_clients[3]] * 3
        assert op_clients[0] != op_clients[3]

    def test_marker_only_finish_completes(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            queue = context.create_queue()
            yield from queue.finish()
            return True

        assert run(env, flow(env))


class TestIsolationAndLifecycle:
    def test_sessions_have_independent_buffers(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            p1 = yield from connect(env, network, library, node, manager, "fn-a")
            p2 = yield from connect(env, network, library, node, manager, "fn-b")
            c1 = Context(p1.get_devices())
            c2 = Context(p2.get_devices())
            q1 = c1.create_queue()
            q2 = c2.create_queue()
            b1 = c1.create_buffer(8)
            b2 = c2.create_buffer(8)
            yield from q1.write_buffer(b1, b"AAAAAAAA")
            yield from q2.write_buffer(b2, b"BBBBBBBB")
            d1 = yield from q1.read_buffer(b1)
            d2 = yield from q2.read_buffer(b2)
            return d1, d2

        d1, d2 = run(env, flow(env))
        assert d1 == b"AAAAAAAA"
        assert d2 == b"BBBBBBBB"
        assert manager.connected_clients == 2

    def test_disconnect_frees_resources(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            context.create_buffer(1024)
            yield env.timeout(0.01)
            assert board.memory.used == 1024
            yield from platform.driver.connection.disconnect()

        run(env, flow(env))
        assert manager.connected_clients == 0
        assert board.memory.used == 0

    def test_reconfiguration_via_remote_build(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            program = context.create_program("mm")
            before = env.now
            yield from program.build()
            first_build = env.now - before
            before = env.now
            yield from context.create_program("mm").build()
            second_build = env.now - before
            return first_build, second_build

        first_build, second_build = run(env, flow(env))
        assert first_build >= board.spec.reconfiguration_time
        assert second_build < 0.1
        assert board.bitstream.name == "mm"
        assert manager.metrics.get("reconfigurations_total").value == 1

    def test_metrics_exported(self, rig):
        env, network, library, node, board, manager = rig

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(1 << 20)
            yield from queue.write_buffer(buffer, nbytes=1 << 20)
            yield from queue.read_buffer(buffer)

        run(env, flow(env))
        metrics = manager.metrics
        assert metrics.get("busy_seconds_total").value > 0
        assert metrics.get("tasks_total").value == 2
        client_busy = metrics.get("client_busy_seconds_total")
        assert client_busy.labels("fn-1").value > 0
        assert metrics.get("connected_clients").value == 1


class TestEventStateMachine:
    def test_write_machine_passes_buffer_state(self, rig):
        env, network, library, node, board, manager = rig
        states = []

        def flow(env):
            platform = yield from connect(env, network, library, node, manager)
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(64)
            event = queue.enqueue_write_buffer(buffer, b"x" * 64)
            connection = platform.driver.connection
            machine = connection.machine(event.id)
            states.append(machine.state)
            queue.flush()
            yield event.wait()
            states.append(machine.state)
            return connection

        connection = run(env, flow(env))
        assert states[0] is FsmState.INIT
        assert states[1] is FsmState.COMPLETE
        assert connection.inflight == 0  # machines are reclaimed

"""Indexed Algorithm 1 must be decision-identical to the brute force.

The :class:`~repro.core.registry.index.DeviceIndex` replaces the oracle's
filter+sort with bucket lookup and an ordered lazy merge; its whole
contract is *exact* equivalence — same device, same node, same
reconfiguration flag, same redistribution moves, same "device not found"
failures — across any fleet, any metric ordering, any filters, any
workload placement.  The hypothesis drive below checks that contract on
randomized fleets, including incremental refreshes (the index's reason to
exist) and removals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DeviceQuery
from repro.core.registry import (
    AllocationError,
    DeviceView,
    MetricFilter,
    allocate,
)
from repro.core.registry.index import DeviceIndex

VENDOR = "Intel(R) Corporation"
PLATFORM = "Intel(R) FPGA SDK for OpenCL(TM)"
OTHER_VENDOR = "Xilinx Inc."
BITSTREAMS = ("sobel", "mm", "alexnet")
METRICS = ("connected_functions", "utilization", "queue_depth")

#: Few discrete metric values so ties (the sort's hard case) are common.
metric_values = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0])

device_views = st.builds(
    DeviceView,
    name=st.uuids().map(lambda u: f"dm-{u.hex[:8]}"),
    node=st.sampled_from(["A", "B", "C", "D"]),
    vendor=st.sampled_from([VENDOR, VENDOR, VENDOR, OTHER_VENDOR]),
    platform=st.just(PLATFORM),
    bitstream=st.sampled_from([None, "sobel", "sobel", "mm", "alexnet"]),
    available_bitstreams=st.sets(
        st.sampled_from(BITSTREAMS), min_size=1
    ).map(lambda s: tuple(sorted(s))),
    metrics=st.fixed_dictionaries(
        {}, optional={name: metric_values for name in METRICS}
    ),
    workloads=st.lists(
        st.tuples(
            st.uuids().map(lambda u: f"inst-{u.hex[:8]}"),
            st.sampled_from(BITSTREAMS),
        ),
        max_size=3,
    ).map(tuple),
)

queries = st.builds(
    DeviceQuery,
    vendor=st.sampled_from(["", "Intel", "Xilinx"]),
    platform=st.just(""),
    accelerator=st.sampled_from(["", "sobel", "mm", "alexnet"]),
)

orders = st.permutations(METRICS).flatmap(
    lambda p: st.integers(min_value=1, max_value=len(p)).map(
        lambda k: tuple(p[:k])
    )
)

filter_sets = st.one_of(
    st.just(()),
    st.sampled_from([0.25, 0.5, 1.0]).map(
        lambda t: (MetricFilter.below("utilization", t),)
    ),
)


def unique_by_name(views):
    seen = {}
    for view in views:
        seen[view.name] = view
    return list(seen.values())


def run_oracle(query, node_hint, views, order, filters):
    try:
        return allocate(query, node_hint, views, order, filters)
    except AllocationError:
        return None


def run_indexed(index, query, node_hint):
    try:
        return index.allocate(query, node_hint)
    except AllocationError:
        return None


def decisions_equal(indexed, oracle):
    if indexed is None or oracle is None:
        return indexed is None and oracle is None
    return (
        indexed.device.name == oracle.device.name
        and indexed.node == oracle.node
        and indexed.needs_reconfiguration == oracle.needs_reconfiguration
        and indexed.redistribution == oracle.redistribution
    )


class TestEquivalenceProperty:
    @settings(max_examples=300, deadline=None)
    @given(
        views=st.lists(device_views, max_size=12).map(unique_by_name),
        query=queries,
        node_hint=st.sampled_from(["", "B"]),
        order=orders,
        filters=filter_sets,
    )
    def test_matches_oracle(self, views, query, node_hint, order, filters):
        index = DeviceIndex(order, filters)
        for view in views:
            index.refresh(view)
        indexed = run_indexed(index, query, node_hint)
        oracle = run_oracle(query, node_hint, views, order, filters)
        assert decisions_equal(indexed, oracle), (
            f"divergence for {query} over {[v.name for v in views]}: "
            f"{indexed} != {oracle}"
        )

    @settings(max_examples=100, deadline=None)
    @given(
        views=st.lists(device_views, min_size=2, max_size=8).map(
            unique_by_name
        ),
        updates=st.lists(
            st.tuples(st.integers(min_value=0), metric_values,
                      st.sampled_from([None, "sobel", "mm"])),
            max_size=5,
        ),
        query=queries,
        order=orders,
    )
    def test_matches_oracle_after_refreshes(self, views, updates, query,
                                            order):
        """Incremental refreshes (metric changes, reprogramming) must not
        let the index drift from what a fresh brute-force scan sees."""
        index = DeviceIndex(order, ())
        for view in views:
            index.refresh(view)
        for position, value, bitstream in updates:
            victim = views[position % len(views)]
            updated = DeviceView(
                name=victim.name, node=victim.node, vendor=victim.vendor,
                platform=victim.platform, bitstream=bitstream,
                available_bitstreams=victim.available_bitstreams,
                metrics={**victim.metrics, "utilization": value},
                workloads=victim.workloads,
            )
            views[position % len(views)] = updated
            index.refresh(updated)
        indexed = run_indexed(index, query, "")
        oracle = run_oracle(query, "", views, order, ())
        assert decisions_equal(indexed, oracle)


class TestIndexMaintenance:
    def view(self, name, bitstream=None, metrics=None, workloads=()):
        return DeviceView(
            name=name, node="A", vendor=VENDOR, platform=PLATFORM,
            bitstream=bitstream, available_bitstreams=BITSTREAMS,
            metrics=metrics or {}, workloads=tuple(workloads),
        )

    def test_refresh_replaces_and_remove_forgets(self):
        index = DeviceIndex(("connected_functions",))
        index.refresh(self.view("dm-A", "sobel",
                                {"connected_functions": 2.0}))
        index.refresh(self.view("dm-A", "sobel",
                                {"connected_functions": 0.0}))
        assert len(index) == 1
        decision = index.allocate(DeviceQuery(accelerator="sobel"), "")
        assert decision.device.metrics["connected_functions"] == 0.0
        index.remove("dm-A")
        assert "dm-A" not in index
        with pytest.raises(AllocationError):
            index.allocate(DeviceQuery(accelerator="sobel"), "")

    def test_mismatch_tiebreak_is_per_partition(self):
        """Regression: the mismatch bit is query-dependent and partition
        constant; binding it lazily once applied the *last* partition's
        bit to every device and collapsed the order to name order."""
        index = DeviceIndex(("connected_functions",))
        # Same metrics, so only the mismatch bit decides; name order
        # would pick dm-a (wrong).
        index.refresh(self.view("dm-a", "sobel",
                                {"connected_functions": 1.0}))
        index.refresh(self.view("dm-b", "mm",
                                {"connected_functions": 1.0}))
        decision = index.allocate(DeviceQuery(accelerator="mm"), "")
        assert decision.device.name == "dm-b"
        assert not decision.needs_reconfiguration

    def test_views_returns_name_order(self):
        index = DeviceIndex()
        for name in ("dm-c", "dm-a", "dm-b"):
            index.refresh(self.view(name, "sobel"))
        assert [v.name for v in index.views()] == ["dm-a", "dm-b", "dm-c"]

    def test_redistribution_matches_oracle(self):
        """The conflicting-workload slow path materializes the same
        candidate list the oracle scans."""
        order = ("connected_functions",)
        views = [
            self.view("dm-a", "sobel", {"connected_functions": 0.0},
                      workloads=(("inst-1", "sobel"),)),
            self.view("dm-b", "mm", {"connected_functions": 1.0}),
            self.view("dm-c", None, {"connected_functions": 2.0}),
        ]
        index = DeviceIndex(order)
        for view in views:
            index.refresh(view)
        query = DeviceQuery(accelerator="mm")
        indexed = index.allocate(query, "")
        oracle = allocate(query, "", views, order, ())
        assert decisions_equal(indexed, oracle)
        assert indexed.redistribution == oracle.redistribution


class TestEndToEndEquivalence:
    def test_scenario_under_both_mode(self, monkeypatch):
        """A real mixed-accelerator deployment with REPRO_ALLOCATOR=both
        asserts index==oracle on every live allocation."""
        monkeypatch.setenv("REPRO_ALLOCATOR", "both")
        from repro.experiments.config import LoadTiming
        from repro.experiments.scale import run_scale_cell

        cell = run_scale_cell(3, timing=LoadTiming(0.25, 0.75))
        assert cell.allocations == cell.functions == 5
        assert cell.migrations == 0
        assert cell.requests > 0

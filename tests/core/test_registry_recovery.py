"""Registry crash tolerance: replay, fencing, reconciliation, standby.

Exercises the durable-state layer end to end on a live testbed: fail-stop
the Accelerators Registry, restart from snapshot+WAL (or from the warm
standby's lagging copy), and verify the recovered control plane converges
to the Device-Manager-reported ground truth with stale-epoch commands
fenced.  The Hypothesis suite crashes at *arbitrary* WAL positions and
asserts recovery is idempotent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_testbed
from repro.cluster.objects import DeviceQuery, PodSpec
from repro.core.device_manager.manager import (
    DeviceManagerError,
    StaleEpochError,
)
from repro.core.registry import (
    AcceleratorsRegistry,
    RegistryStore,
    RegistryUnavailableError,
    StandbyPolicy,
    WarmStandby,
)
from repro.experiments.registry_chaos import check_invariants
from repro.faults import FaultScript, HealthPolicy, RegistryCrash
from repro.ocl.errors import (
    CL_REGISTRY_UNAVAILABLE,
    CL_STALE_REGISTRY_EPOCH,
)
from repro.serverless import FunctionSpec, Gateway, SobelApp
from repro.faults.policies import GatewayPolicy
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _no_registry_env(monkeypatch):
    monkeypatch.delenv("REPRO_REGISTRY", raising=False)


def build(env, durability="durable", snapshot_interval=None,
          with_scraper=True):
    testbed = build_testbed(env, functional=False,
                            with_scraper=with_scraper)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper if with_scraper else None,
        durability=durability, snapshot_interval=snapshot_interval,
    )
    return testbed, registry


def create_pods(env, cluster, count, prefix="sobel", function="fn-sobel"):
    def driver():
        for index in range(count):
            yield from cluster.create_pod(PodSpec(
                name=f"{prefix}-{index}", function=function,
                device_query=DeviceQuery(accelerator="sobel"),
            ))
    env.run(until=env.process(driver()))


def state_digest(registry):
    """Durability-invariant view of both services (epoch excluded)."""
    state = registry.snapshot_state()
    return {
        "devices": state["devices"],
        "functions": state["functions"],
    }


class TestDurabilityModes:
    def test_volatile_default_has_no_store(self):
        env = Environment()
        _, registry = build(env, durability="volatile")
        assert registry.store is None
        assert registry.durability == "volatile"
        registry.crash()
        assert not registry.alive
        with pytest.raises(RuntimeError, match="no durable store"):
            registry.restart()

    def test_env_var_overrides_constructor(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", "durable")
        env = Environment()
        _, registry = build(env, durability="volatile")
        assert registry.durability == "durable"
        assert registry.store is not None

    def test_unknown_mode_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="durability"):
            build(env, durability="raid0")

    def test_snapshot_loop_folds_the_wal(self):
        env = Environment()
        testbed, registry = build(env, snapshot_interval=1.0)
        create_pods(env, testbed.cluster, 2)
        env.run(until=5.0)
        assert registry.store.snapshots_taken >= 4
        assert registry.store.snapshot_state is not None


class TestCrashRestart:
    def test_replay_restores_both_services(self):
        env = Environment()
        testbed, registry = build(env, snapshot_interval=None)
        create_pods(env, testbed.cluster, 4)
        before = state_digest(registry)
        injector = RegistryCrash(registry)
        injector.kill()
        assert not registry.alive
        assert len(registry.devices) == 0  # process memory gone
        assert registry.functions.all() == []
        env.run(until=env.now + 0.5)
        env.run(until=injector.restore())
        assert registry.alive
        assert registry.epoch == 2
        assert state_digest(registry) == before
        assert registry.blackout_seconds > 0
        assert check_invariants(registry, testbed.cluster) == (0, 0)

    def test_blackout_admissions_fail_structured(self):
        env = Environment()
        testbed, registry = build(env)
        registry.crash()

        def late():
            try:
                yield from testbed.cluster.create_pod(PodSpec(
                    name="late", function="fn",
                    device_query=DeviceQuery(accelerator="sobel"),
                ))
            except RegistryUnavailableError as exc:
                return exc
            return None

        exc = env.run(until=env.process(late()))
        assert exc is not None
        assert exc.cl_code == CL_REGISTRY_UNAVAILABLE
        assert exc.retryable
        assert registry.denied_admissions == 1
        assert "late" not in testbed.cluster.pods  # name reusable on retry

    def test_lost_wal_tail_healed_by_reconciliation(self):
        env = Environment()
        testbed, registry = build(env, snapshot_interval=None)
        create_pods(env, testbed.cluster, 4)
        before = state_digest(registry)
        registry.store.truncate(registry.store.seq - 4)  # lose the admits
        injector = RegistryCrash(registry)
        injector.kill()
        env.run(until=injector.restore())
        # The pods (ground truth) re-adopted despite the lost records.
        assert registry.reconciliation["adopted_instances"] == 4
        assert state_digest(registry) == before
        assert check_invariants(registry, testbed.cluster) == (0, 0)

    def test_pods_deleted_during_blackout_are_dropped(self):
        env = Environment()
        testbed, registry = build(env, snapshot_interval=None)
        create_pods(env, testbed.cluster, 3)
        injector = RegistryCrash(registry)
        injector.kill()
        testbed.cluster.delete_pod("sobel-1")
        assert registry.missed_watch_events == 1
        env.run(until=injector.restore())
        assert registry.functions.instance("sobel-1") is None
        assert registry.reconciliation["dropped_instances"] == 1
        assert check_invariants(registry, testbed.cluster) == (0, 0)

    def test_health_monitor_rearmed_after_restart(self):
        env = Environment()
        testbed, registry = build(env)
        registry.enable_health(network=testbed.network,
                               policy=HealthPolicy(heartbeat_interval=0.25,
                                                   lease_timeout=1.0))
        injector = RegistryCrash(registry)
        injector.kill()
        assert registry.health is None
        env.run(until=injector.restore())
        assert registry.health is not None
        # The re-armed monitor still detects a dead board.
        victim = testbed.managers[sorted(testbed.managers)[0]]
        victim.crash()
        env.run(until=env.now + 3.0)
        assert not registry.devices.get(victim.name).alive
        registry.health.stop()


class TestEpochFencing:
    def test_stale_epoch_rejected(self):
        env = Environment()
        testbed, registry = build(env)
        manager = testbed.managers[sorted(testbed.managers)[0]]
        report = manager.registry_command(registry.epoch, "report_state")
        assert report["alive"]
        assert manager.registry_epoch == registry.epoch
        with pytest.raises(StaleEpochError) as excinfo:
            manager.registry_command(registry.epoch - 1, "sync_instances",
                                     [])
        assert excinfo.value.cl_code == CL_STALE_REGISTRY_EPOCH
        assert manager.fenced_commands == 1

    def test_zombie_probe_after_restart(self):
        env = Environment()
        testbed, registry = build(env)
        manager = testbed.managers[sorted(testbed.managers)[0]]
        injector = RegistryCrash(registry)
        injector.kill()
        env.run(until=injector.restore())
        assert registry.epoch == 2
        assert injector.zombie_probe(manager)
        assert injector.zombie_fenced == 1
        assert injector.zombie_accepted == 0

    def test_epoch_survives_crashes_monotonically(self):
        env = Environment()
        testbed, registry = build(env)
        for expected in (2, 3, 4):
            injector = RegistryCrash(registry)
            injector.kill()
            env.run(until=injector.restore())
            assert registry.epoch == expected

    def test_dead_manager_rejects_commands(self):
        env = Environment()
        testbed, registry = build(env)
        manager = testbed.managers[sorted(testbed.managers)[0]]
        manager.crash()
        with pytest.raises(DeviceManagerError):
            manager.registry_command(registry.epoch, "report_state")

    def test_fault_script_convenience(self):
        env = Environment()
        testbed, registry = build(env)
        injector = RegistryCrash(registry)
        script = FaultScript(env)
        script.crash_registry(injector, at=1.0, restart_after=0.5)
        script.arm()
        env.run(until=3.0)
        assert registry.crashes == 1
        assert registry.recoveries == 1
        assert [what for _, what in script.executed] == [
            "crash registry", "restart registry",
        ]


class TestUnwatchManager:
    def test_deregister_clears_health_state(self):
        env = Environment()
        testbed, registry = build(env)
        health = registry.enable_health(
            network=testbed.network,
            policy=HealthPolicy(heartbeat_interval=0.25, lease_timeout=1.0),
        )
        name = sorted(testbed.managers)[0]
        # Detach its instances first (deregister refuses busy devices).
        assert not registry.devices.get(name).instances
        beater = health._beaters[name]
        assert registry.deregister_manager(name)
        assert name not in health.last_seen
        assert name not in health._beaters
        assert all(m.name != name for m in health._managers)
        env.run(until=env.now + 1.0)
        assert not beater.is_alive
        # The stale lease never "expires" into a spurious failure.
        env.run(until=env.now + 3.0)
        assert all(n != name for _, n in health.failures_detected)
        health.stop()

    def test_unwatch_unknown_manager_is_noop(self):
        env = Environment()
        testbed, registry = build(env)
        health = registry.enable_health(
            network=testbed.network,
            policy=HealthPolicy(heartbeat_interval=0.25, lease_timeout=1.0),
        )
        health.unwatch_manager("no-such-dm")
        health.stop()


class TestGatewayBlackoutRetry:
    def test_deploy_rides_out_the_blackout(self):
        env = Environment()
        testbed, registry = build(env)
        gateway = Gateway(env, testbed.cluster, policy=GatewayPolicy(
            retry_budget=8, retry_backoff=0.2, backoff_factor=1.5,
        ))
        injector = RegistryCrash(registry)
        injector.kill()

        def restart_later():
            yield env.timeout(0.5)
            yield injector.restore()

        env.process(restart_later())
        function = env.run(until=env.process(gateway.deploy(FunctionSpec(
            name="fn-a", app_factory=SobelApp,
            device_query=DeviceQuery(vendor="Intel", accelerator="sobel"),
            runtime="blastfunction",
        ))))
        assert function.deploy_retries >= 1
        assert len(function.pod_names) == 1
        assert registry.denied_admissions >= 1

    def test_no_policy_means_no_retry(self):
        env = Environment()
        testbed, registry = build(env)
        gateway = Gateway(env, testbed.cluster)  # seed fast path
        registry.crash()

        def deploy():
            try:
                yield from gateway.deploy(FunctionSpec(
                    name="fn-a", app_factory=SobelApp,
                    device_query=DeviceQuery(vendor="Intel",
                                             accelerator="sobel"),
                    runtime="blastfunction",
                ))
            except RegistryUnavailableError as exc:
                return exc
            return None

        assert env.run(until=env.process(deploy())) is not None


class TestWarmStandby:
    def test_takeover_on_lease_expiry(self):
        env = Environment()
        testbed, registry = build(env, durability="replicated",
                                  snapshot_interval=2.0)
        standby = WarmStandby(env, registry, testbed.network,
                              dict(testbed.managers),
                              StandbyPolicy(sync_interval=0.2,
                                            lease_timeout=0.6))
        create_pods(env, testbed.cluster, 3)
        env.run(until=env.now + 1.0)
        before = state_digest(registry)
        assert standby.records_tailed >= 1
        injector = RegistryCrash(registry)
        injector.kill()
        env.run(until=env.now + 3.0)
        assert standby.takeovers == 1
        assert standby.is_leader
        assert registry.alive
        assert registry.store is standby.log
        assert registry.epoch == 2
        assert state_digest(registry) == before
        assert check_invariants(registry, testbed.cluster) == (0, 0)
        assert injector.zombie_probe(
            testbed.managers[sorted(testbed.managers)[0]]
        )

    def test_lagging_standby_heals_through_reconciliation(self):
        env = Environment()
        testbed, registry = build(env, durability="replicated",
                                  snapshot_interval=None)
        standby = WarmStandby(env, registry, testbed.network,
                              dict(testbed.managers),
                              StandbyPolicy(sync_interval=10.0,
                                            lease_timeout=0.3))
        env.run(until=env.now + 0.05)
        create_pods(env, testbed.cluster, 3)  # never tailed (10 s interval)
        injector = RegistryCrash(registry)
        injector.kill()
        env.run(until=env.now + 15.0)
        assert standby.takeovers == 1
        assert standby.lag_records_at_takeover > 0
        # The un-replicated admissions were re-adopted from the pods.
        assert registry.reconciliation["adopted_instances"] == 3
        assert check_invariants(registry, testbed.cluster) == (0, 0)

    def test_standby_survives_while_leader_healthy(self):
        env = Environment()
        testbed, registry = build(env, durability="replicated",
                                  snapshot_interval=None)
        standby = WarmStandby(env, registry, testbed.network,
                              dict(testbed.managers),
                              StandbyPolicy(sync_interval=0.2,
                                            lease_timeout=0.6))
        env.run(until=5.0)
        assert standby.takeovers == 0
        assert not standby.is_leader
        standby.stop()


# ---------------------------------------------------------------------------
# Hypothesis: crash at arbitrary WAL positions, recovery is idempotent
# ---------------------------------------------------------------------------

ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(0, 7)),
        st.tuples(st.just("delete"), st.integers(0, 7)),
        st.tuples(st.just("fail_device"), st.integers(0, 2)),
        st.tuples(st.just("recover_device"), st.integers(0, 2)),
    ),
    min_size=1, max_size=10,
)


@settings(max_examples=15, deadline=None)
@given(actions=ACTIONS, cut=st.integers(0, 40), data=st.data())
def test_recovery_idempotent_at_any_wal_position(actions, cut, data):
    """Crash at an arbitrary WAL cut; replayed state converges to pod/DM
    ground truth, and replaying the WAL a second time changes nothing."""
    env = Environment()
    testbed = build_testbed(env, functional=False, with_scraper=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        durability="durable", snapshot_interval=None,
    )
    manager_names = sorted(testbed.managers)
    created = set()

    def driver():
        for action, arg in actions:
            yield env.timeout(0.01)
            if action == "create":
                name = f"pod-{arg}"
                if name in testbed.cluster.pods:
                    continue
                yield from testbed.cluster.create_pod(PodSpec(
                    name=name, function="fn-sobel",
                    device_query=DeviceQuery(accelerator="sobel"),
                ))
                created.add(name)
            elif action == "delete":
                name = f"pod-{arg}"
                if name in testbed.cluster.pods:
                    testbed.cluster.delete_pod(name)
            elif action == "fail_device":
                registry.on_device_failure(manager_names[arg])
            elif action == "recover_device":
                registry.on_device_recovery(manager_names[arg])

    env.run(until=env.process(driver()))
    env.run(until=env.now + 1.0)  # let evacuations settle

    # Maybe snapshot mid-history, then lose an arbitrary WAL tail.
    if data.draw(st.booleans(), label="snapshot"):
        registry.store.take_snapshot(registry.snapshot_state())
    low = registry.store.snapshot_seq
    registry.store.truncate(low + cut)

    registry.crash()
    env.run(until=registry.restart())
    env.run(until=env.now + 1.0)  # let post-reconcile evacuations settle

    # 1. Converged to ground truth: no double allocations, none lost.
    assert check_invariants(registry, testbed.cluster) == (0, 0)

    # 2. Double replay is a no-op: re-applying the full WAL in order
    #    leaves both services bit-identical.
    before = state_digest(registry)
    _snapshot, records = registry.store.replay()
    registry._replaying = True
    try:
        for record in records:
            registry._apply_record(record, dict(testbed.managers))
    finally:
        registry._replaying = False
    assert state_digest(registry) == before

    # 3. A second crash/restart converges to the same state.
    registry.crash()
    env.run(until=registry.restart())
    env.run(until=env.now + 1.0)
    assert check_invariants(registry, testbed.cluster) == (0, 0)

"""Focused unit tests for Remote OpenCL Library internals."""

import pytest

from repro.core.device_manager import DeviceManager, protocol
from repro.core.remote_lib import (
    FsmState,
    ManagerAddress,
    PlatformRouter,
    RemoteEventMachine,
    remote_platform,
)
from repro.fpga import FPGABoard, standard_library
from repro.ocl import CLError, CommandType, Context
from repro.ocl.objects import CLEvent
from repro.rpc import Message, Network
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)
    return env, network, library, node, board, manager


def run(env, generator):
    return env.run(until=env.process(generator))


class TestRouter:
    def test_empty_router_raises(self, rig):
        env, network, library, node, *_ = rig
        router = PlatformRouter(env, network, library)
        with pytest.raises(LookupError, match="no Device Managers"):
            run(env, router.connect("c", node))

    def test_unknown_manager_name(self, rig):
        env, network, library, node, board, manager = rig
        router = PlatformRouter(env, network, library)
        router.add_manager(ManagerAddress.of(manager))
        with pytest.raises(LookupError, match="unknown Device Manager"):
            run(env, router.connect("c", node, "dm-Z"))

    def test_default_manager_is_first_sorted(self, rig):
        env, network, library, node, board, manager = rig
        router = PlatformRouter(env, network, library)
        router.add_manager(ManagerAddress.of(manager))
        platform = run(env, router.connect("c", node))
        assert platform.driver.connection.manager_endpoint is \
            manager.endpoint

    def test_remove_manager(self, rig):
        env, network, library, node, board, manager = rig
        router = PlatformRouter(env, network, library)
        router.add_manager(ManagerAddress.of(manager))
        router.remove_manager("dm-B")
        assert router.managers() == []


class TestEventMachineProtocol:
    class FakeConnection:
        def __init__(self):
            self.forgotten = []
            self.writes = []

        def forget(self, tag):
            self.forgotten.append(tag)

        def stream_write_data(self, tag, payload, nbytes):
            self.writes.append((tag, nbytes))

    def make_machine(self, env, write=False):
        event = CLEvent(env, CommandType.WRITE_BUFFER if write
                        else CommandType.READ_BUFFER)
        connection = self.FakeConnection()
        machine = RemoteEventMachine(
            connection, event,
            write_payload=b"x" if write else None,
            write_nbytes=1 if write else 0,
        )
        return machine, event, connection

    def test_read_walks_init_first_complete(self):
        env = Environment()
        machine, event, _ = self.make_machine(env)
        machine.on_notification(Message(method=protocol.OP_ENQUEUED))
        assert machine.state is FsmState.FIRST
        machine.on_notification(Message(method=protocol.OP_COMPLETE,
                                        payload={"data": b"hi"}))
        assert machine.state is FsmState.COMPLETE
        env.run()
        assert event.value == b"hi"

    def test_write_passes_buffer_state_and_sends_data(self):
        env = Environment()
        machine, event, connection = self.make_machine(env, write=True)
        machine.on_notification(Message(method=protocol.OP_ENQUEUED))
        assert machine.state is FsmState.BUFFER
        assert connection.writes == [(machine.tag, 1)]

    def test_duplicate_enqueued_is_protocol_violation(self):
        env = Environment()
        machine, event, _ = self.make_machine(env)
        machine.on_notification(Message(method=protocol.OP_ENQUEUED))
        machine.on_notification(Message(method=protocol.OP_ENQUEUED))
        assert machine.state is FsmState.FAILED
        assert event.status < 0

    def test_unknown_notification_fails_machine(self):
        env = Environment()
        machine, event, _ = self.make_machine(env)
        machine.on_notification(Message(method="Bogus"))
        assert machine.state is FsmState.FAILED

    def test_failure_carries_error_text(self):
        env = Environment()
        machine, event, _ = self.make_machine(env)
        machine.on_notification(Message(
            method=protocol.OP_FAILED, payload={"error": "board on fire"}
        ))
        env.run()
        with pytest.raises(CLError, match="board on fire"):
            raise event.completion.value

    def test_machine_forgotten_after_terminal_state(self):
        env = Environment()
        machine, event, connection = self.make_machine(env)
        machine.on_notification(Message(method=protocol.OP_ENQUEUED))
        machine.on_notification(Message(method=protocol.OP_COMPLETE))
        assert connection.forgotten == [machine.tag]


class TestEagerResourceFailures:
    def test_failed_buffer_fails_dependent_ops_locally(self, rig):
        """OOM buffer: the gated enqueue fails without reaching the DM."""
        env, network, library, node, board, manager = rig

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            huge = context.create_buffer(board.spec.memory_bytes * 2)
            event = queue.enqueue_read_buffer(huge, nbytes=16)
            queue.flush()
            try:
                yield event.wait()
            except CLError as exc:
                return exc
            return None

        error = run(env, flow())
        assert error is not None
        # The op never reached the manager (no tasks executed).
        assert manager.metrics.get("tasks_total").value == 0

    def test_release_buffer_frees_remote_memory(self, rig):
        env, network, library, node, board, manager = rig

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            buffer = context.create_buffer(2048)
            yield env.timeout(0.05)
            assert board.memory.used == 2048
            buffer.release()
            yield env.timeout(0.05)
            return board.memory.used

        assert run(env, flow()) == 0

    def test_double_release_is_idempotent(self, rig):
        env, network, library, node, board, manager = rig

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            buffer = context.create_buffer(64)
            yield env.timeout(0.05)
            buffer.release()
            buffer.release()
            yield env.timeout(0.05)
            return board.memory.used

        assert run(env, flow()) == 0

"""Differential fuzzing: Native vs BlastFunction must agree byte-for-byte.

Hypothesis generates random host programs (writes, device copies, Sobel
kernels, reads over a small set of buffers); each program runs once against
the native vendor runtime and once through the full remote stack.  The
transparency property demands identical observable results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.ocl import Context, native_platform
from repro.rpc import Network
from repro.sim import Environment

SIDE = 4                      # 4×4 uint32 images
BUF_BYTES = SIDE * SIDE * 4
NUM_BUFFERS = 3

# One program op: ("write", buf, seed) | ("copy", src, dst)
#                | ("sobel", src, dst) | ("read", buf)
_buf = st.integers(min_value=0, max_value=NUM_BUFFERS - 1)
_op = st.one_of(
    st.tuples(st.just("write"), _buf,
              st.integers(min_value=0, max_value=2**16)),
    st.tuples(st.just("copy"), _buf, _buf),
    st.tuples(st.just("sobel"), _buf, _buf),
    st.tuples(st.just("read"), _buf),
)
_program = st.lists(_op, min_size=2, max_size=10)


def _payload(seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**16, size=SIDE * SIDE,
                        dtype=np.uint32).tobytes()


def _run_program(platform_builder, program):
    """Execute a program; returns the list of read results."""
    env, build = platform_builder()
    results = []

    def flow():
        platform = yield from build()
        context = Context(platform.get_devices())
        queue = context.create_queue()
        prog = context.create_program("sobel")
        yield from prog.build()
        kernel = prog.create_kernel("sobel")
        buffers = [context.create_buffer(BUF_BYTES)
                   for _ in range(NUM_BUFFERS)]
        for op in program:
            if op[0] == "write":
                yield from queue.write_buffer(buffers[op[1]],
                                              _payload(op[2]))
            elif op[0] == "copy":
                if op[1] == op[2]:
                    continue  # same-buffer copy is UB in OpenCL; skip
                event = queue.enqueue_copy_buffer(buffers[op[1]],
                                                  buffers[op[2]])
                queue.flush()
                yield event.wait()
            elif op[0] == "sobel":
                if op[1] == op[2]:
                    continue
                kernel.set_args(buffers[op[1]], buffers[op[2]], SIDE, SIDE)
                yield from queue.run_kernel(kernel)
            elif op[0] == "read":
                data = yield from queue.read_buffer(buffers[op[1]])
                results.append(data)
        yield from queue.finish()

    env.run(until=env.process(flow()))
    return results


def _native_builder():
    env = Environment()
    board = FPGABoard(env, functional=True)
    platform = native_platform(env, board, standard_library())

    def build():
        return platform
        yield  # pragma: no cover

    return env, build


def _remote_builder():
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)

    def build():
        platform = yield from remote_platform(
            env, "fuzz-client", node, manager, network, library
        )
        return platform

    return env, build


class TestDifferentialExecution:
    @given(program=_program)
    @settings(max_examples=25, deadline=None)
    def test_native_and_remote_agree(self, program):
        native_results = _run_program(_native_builder, program)
        remote_results = _run_program(_remote_builder, program)
        assert len(native_results) == len(remote_results)
        for native_data, remote_data in zip(native_results, remote_results):
            assert native_data == remote_data

    def test_regression_interleaved_ops(self):
        """A fixed tricky program: write→sobel→copy→overwrite→read chains."""
        program = [
            ("write", 0, 1234),
            ("sobel", 0, 1),
            ("copy", 1, 2),
            ("write", 1, 999),
            ("sobel", 1, 0),
            ("read", 0),
            ("read", 2),
        ]
        assert _run_program(_native_builder, program) == _run_program(
            _remote_builder, program
        )

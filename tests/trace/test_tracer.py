"""Tests for the tracing subsystem: recording, analysis, adapters, export."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.trace import (
    Tracer,
    attach_board,
    attach_gateway,
    attach_manager,
    to_chrome_events,
    to_chrome_json,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer(env):
    return Tracer(env)


class TestRecording:
    def test_span_defaults_end_to_now(self, env, tracer):
        def proc():
            start = env.now
            yield env.timeout(2.0)
            tracer.span("kernel", "sobel", "fpga-B", start)

        env.run(until=env.process(proc()))
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.duration == pytest.approx(2.0)

    def test_backwards_span_rejected(self, env, tracer):
        with pytest.raises(ValueError):
            tracer.span("x", "x", "a", start=5.0, end=1.0)

    def test_disabled_tracer_records_nothing(self, env, tracer):
        tracer.enabled = False
        tracer.span("x", "x", "a", 0.0, 1.0)
        tracer.instant("y", "y", "a")
        assert len(tracer) == 0

    def test_args_are_queryable(self, env, tracer):
        tracer.span("task", "t1", "dm-A", 0.0, 1.0, client="fn-1", ops=3)
        span = tracer.spans[0]
        assert span.arg("client") == "fn-1"
        assert span.arg("ops") == 3
        assert span.arg("missing", 42) == 42


class TestQueries:
    def test_category_and_actor_filters(self, env, tracer):
        tracer.span("kernel", "a", "fpga-A", 0.0, 1.0)
        tracer.span("dma", "b", "fpga-A", 1.0, 2.0)
        tracer.span("kernel", "c", "fpga-B", 0.0, 3.0)
        assert len(tracer.by_category("kernel")) == 2
        assert len(tracer.by_actor("fpga-A")) == 2
        assert tracer.actors() == ["fpga-A", "fpga-B"]
        assert tracer.total_time("kernel") == pytest.approx(4.0)
        assert tracer.total_time("kernel", "fpga-A") == pytest.approx(1.0)

    def test_busy_fraction_merges_overlaps(self, env, tracer):
        tracer.span("kernel", "a", "fpga-A", 0.0, 6.0)
        tracer.span("dma", "b", "fpga-A", 4.0, 8.0)  # overlaps the kernel
        fraction = tracer.busy_fraction("fpga-A", 0.0, 10.0)
        assert fraction == pytest.approx(0.8)

    def test_busy_fraction_clips_to_window(self, env, tracer):
        tracer.span("kernel", "a", "fpga-A", 0.0, 100.0)
        assert tracer.busy_fraction("fpga-A", 10.0, 20.0) == pytest.approx(1.0)

    def test_timeline_buckets(self, env, tracer):
        tracer.span("kernel", "a", "fpga-A", 0.0, 5.0)
        buckets = tracer.timeline("fpga-A", resolution=5.0, start=0.0,
                                  end=10.0)
        assert buckets == [(0.0, pytest.approx(1.0)),
                           (5.0, pytest.approx(0.0))]

    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
            ),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_busy_fraction_bounded(self, intervals):
        env = Environment()
        tracer = Tracer(env)
        for a, b in intervals:
            lo, hi = min(a, b), max(a, b)
            tracer.span("kernel", "k", "dev", lo, hi)
        fraction = tracer.busy_fraction("dev", 0.0, 50.0)
        assert 0.0 <= fraction <= 1.0


class TestAdapters:
    def test_attach_board_traces_activity(self, env):
        from repro.fpga import FPGABoard, standard_library

        tracer = Tracer(env)
        board = FPGABoard(env, name="fpga-T", functional=False)
        attach_board(tracer, board)
        library = standard_library()

        def flow():
            yield from board.program(library.get("sobel"))
            buffer = board.allocate(4096)
            yield from board.dma_write(buffer, 4096)
            yield from board.execute("sobel", [buffer, buffer, 16, 16])

        env.run(until=env.process(flow()))
        categories = [span.category for span in tracer.by_actor("fpga-T")]
        assert categories == ["reconfigure", "dma", "kernel"]

    def test_attach_manager_traces_tasks_and_ops(self, env):
        from repro.core.device_manager import DeviceManager
        from repro.core.remote_lib import remote_platform
        from repro.fpga import FPGABoard, standard_library
        from repro.ocl import Context
        from repro.rpc import Network

        tracer = Tracer(env)
        network = Network(env)
        library = standard_library()
        node = network.host("B")
        board = FPGABoard(env, functional=False)
        manager = DeviceManager(env, "dm-B", board, library, network, node)
        attach_manager(tracer, manager)

        def flow():
            platform = yield from remote_platform(
                env, "fn-1", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            buffer = context.create_buffer(1024)
            yield from queue.write_buffer(buffer, nbytes=1024)
            yield from queue.read_buffer(buffer)

        env.run(until=env.process(flow()))
        tasks = tracer.by_category("task")
        assert len(tasks) == 2
        assert all(span.arg("client") == "fn-1" for span in tasks)
        assert len(tracer.by_category("op:write")) == 1
        assert len(tracer.by_category("op:read")) == 1

    def test_attach_gateway_traces_requests(self, env):
        from repro.cluster import DeviceQuery, build_testbed
        from repro.core.registry import AcceleratorsRegistry
        from repro.core.remote_lib import ManagerAddress, PlatformRouter
        from repro.serverless import (
            FunctionController,
            FunctionSpec,
            Gateway,
            SobelApp,
        )

        testbed = build_testbed(env, functional=False)
        registry = AcceleratorsRegistry(
            env, testbed.cluster, list(testbed.managers.values()),
            scraper=testbed.scraper,
        )
        router = PlatformRouter(env, testbed.network, testbed.library)
        router.add_managers(
            [ManagerAddress.of(m) for m in testbed.managers.values()]
        )
        gateway = Gateway(env, testbed.cluster)
        controller = FunctionController(env, testbed.cluster, gateway,
                                        router)
        tracer = Tracer(env)
        attach_gateway(tracer, gateway)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="fn",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready("fn")
            yield from gateway.invoke("fn")

        env.run(until=env.process(flow()))
        requests = tracer.by_category("request")
        assert len(requests) == 1
        assert requests[0].arg("latency") > 0


class TestChromeExport:
    def test_events_round_trip_json(self, env, tracer):
        tracer.span("kernel", "sobel", "fpga-A", 0.001, 0.002, client="f")
        tracer.instant("marker", "flush", "dm-A", 0.0015)
        document = json.loads(to_chrome_json(tracer))
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i"}
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["ts"] == pytest.approx(1000.0)   # µs
        assert complete["dur"] == pytest.approx(1000.0)
        assert complete["args"] == {"client": "f"}

    def test_actors_get_distinct_pids(self, env, tracer):
        tracer.span("kernel", "a", "fpga-A", 0, 1)
        tracer.span("kernel", "b", "fpga-B", 0, 1)
        events = to_chrome_events(tracer)
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) == 2

    def test_write_file(self, env, tracer, tmp_path):
        from repro.trace import write_chrome_trace

        tracer.span("kernel", "a", "fpga-A", 0, 1)
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        assert json.loads(path.read_text())["traceEvents"]

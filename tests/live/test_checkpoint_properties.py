"""Property suite for the live-migration checkpoint wire format.

The acceptance bar: an arbitrary board checkpoint round-trips through
``to_wire → from_wire`` losslessly, and re-serializing the parsed copy is
**bit-identical** to the first image (the format is fully deterministic —
sorted-keys JSON metadata plus order-preserving binary blobs).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device_manager import OpType
from repro.live import (
    BoardCheckpoint,
    BufferCheckpoint,
    CheckpointError,
    OperationCheckpoint,
    SessionCheckpoint,
    TaskCheckpoint,
)

import pytest

# JSON-clean text (the wire metadata is JSON; identifiers in the real
# system are ASCII names).
names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12
)

blobs = st.none() | st.binary(max_size=64)

operations = st.builds(
    OperationCheckpoint,
    type=st.sampled_from([t.value for t in OpType]),
    queue_id=st.integers(0, 7),
    tag=st.integers(0, 1 << 31),
    buffer_id=st.none() | st.integers(0, 128),
    dst_buffer_id=st.none() | st.integers(0, 128),
    nbytes=st.integers(0, 1 << 24),
    offset=st.integers(0, 1 << 24),
    dst_offset=st.integers(0, 1 << 24),
    kernel_id=st.none() | st.integers(0, 64),
    kernel_args=st.none() | st.lists(
        st.tuples(
            st.sampled_from(["buffer", "scalar"]),
            st.integers(-(1 << 30), 1 << 30),
        ).map(list),
        max_size=4,
    ),
    data=blobs,
    pending=st.booleans(),
)

buffers = st.builds(
    BufferCheckpoint,
    buffer_id=st.integers(0, 256),
    size=st.integers(0, 1 << 26),
    offset=st.integers(0, 1 << 26),
    data=blobs,
)

tasks = st.builds(
    TaskCheckpoint,
    queue_id=st.integers(0, 7),
    operations=st.lists(operations, max_size=4),
    submitted_at=st.none() | st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
)

sessions = st.builds(
    SessionCheckpoint,
    client=names,
    next_kernel_id=st.integers(1, 1024),
    kernels=st.dictionaries(
        st.integers(1, 64), st.tuples(names, names), max_size=4
    ),
    buffers=st.lists(buffers, max_size=4),
    tasks=st.lists(tasks, max_size=3),
    open_operations=st.lists(operations, max_size=3),
)

boards = st.builds(
    BoardCheckpoint,
    manager=names,
    bitstream=st.none() | names,
    captured_at=st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    sessions=st.lists(sessions, max_size=3),
)


@settings(deadline=None)
@given(boards)
def test_round_trip_is_lossless(checkpoint):
    restored = BoardCheckpoint.from_wire(checkpoint.to_wire())
    assert restored == checkpoint


@settings(deadline=None)
@given(boards)
def test_reserialization_is_bit_identical(checkpoint):
    wire = checkpoint.to_wire()
    assert BoardCheckpoint.from_wire(wire).to_wire() == wire


@settings(deadline=None)
@given(sessions)
def test_transfer_nbytes_covers_payload(session):
    # The modelled state-transfer cost is at least the declared DDR
    # segments plus every staged payload byte (it also includes the
    # metadata, so >=).
    floor = sum(b.size for b in session.buffers)
    for ops in [*(t.operations for t in session.tasks),
                session.open_operations]:
        floor += sum(len(op.data) for op in ops if op.data is not None)
    assert session.transfer_nbytes >= floor


def test_bad_magic_rejected():
    with pytest.raises(CheckpointError):
        BoardCheckpoint.from_wire(b"not a checkpoint")

"""Drain protocol + checkpoint/restore against real Device Managers.

The exactness bar: a drained board captured with :func:`capture_board`,
restored with ``exact=True`` onto an identically-programmed blank board
and captured again yields a **bit-identical** wire image (modulo the
board's own name and capture timestamp).
"""

import pytest

from repro.cluster import build_testbed
from repro.core.device_manager import Operation, OpType, Task
from repro.core.device_manager.manager import ClientSession
from repro.live import (
    CheckpointError,
    capture_board,
    capture_session,
    restore_session,
)
from repro.core.device_manager.protocol import OP_COMPLETE
from repro.sim import Environment, Event


class FakeTransport:
    """Just enough of a transport for hand-built sessions."""

    def __init__(self, env):
        self.env = env
        self.delivered = []

    def deliver_to_client(self, endpoint, message):
        self.delivered.append(message)
        yield self.env.timeout(0)

    def data_to_client(self, nbytes):
        yield self.env.timeout(0)


def make_pair(functional=True):
    env = Environment()
    testbed = build_testbed(env, functional=functional)
    a = testbed.managers["dm-A"]
    b = testbed.managers["dm-B"]

    def program():
        yield from a.board.program(testbed.library.get("sobel"))
        yield from b.board.program(testbed.library.get("sobel"))

    env.run(until=env.process(program()))
    return env, testbed, a, b


def drained(env, manager):
    env.run(until=env.process(manager.drain()))


def populate(env, manager, transport):
    """Hand-build a drained client session with every kind of state."""
    session = ClientSession("c1", transport, None)
    manager.sessions["c1"] = session
    session.kernels[1] = ("sobel", "sobel")
    session._next_kernel_id = 5

    big = manager.board.allocate(4096)
    small = manager.board.allocate(1024)
    if manager.board.functional:
        big.write(bytes(range(256)) * 16)
        small.write(b"\x2a" * 1024)
    session.buffers[big.id] = big
    session.buffers[small.id] = small

    # Queued work (diverted to the drain backlog): a marker task, then a
    # write whose payload already arrived, then one still pending.
    marker = Task("c1", 0)
    marker.append(Operation(type=OpType.MARKER, client="c1", queue_id=0,
                            tag=11))
    manager._submit(marker)

    writes = Task("c1", 0)
    writes.append(Operation(
        type=OpType.WRITE, client="c1", queue_id=0, tag=12,
        buffer_id=big.id, nbytes=16, data=b"y" * 16,
    ))
    pending = Operation(
        type=OpType.WRITE, client="c1", queue_id=0, tag=13,
        buffer_id=big.id, nbytes=32, data_ready=Event(env),
    )
    writes.append(pending)
    manager._submit(writes)
    manager._pending_writes[13] = pending

    # An unflushed accumulator operation and a cached unary reply.
    manager.accumulator.add(Operation(
        type=OpType.MARKER, client="c1", queue_id=1, tag=14,
    ))
    manager._replies[("c1", 42)] = (transport, True, {"r": 1})
    return session


class TestExactRestore:
    def test_round_trip_is_bit_identical(self):
        env, testbed, a, b = make_pair(functional=True)
        ta, tb = FakeTransport(env), FakeTransport(env)
        drained(env, a)
        drained(env, b)
        populate(env, a, ta)

        first = capture_board(a)
        assert a.sessions == {}
        assert 13 not in a._pending_writes

        for session in first.sessions:
            restore_session(b, session, tb, None, exact=True)
        assert 13 in b._pending_writes  # pending write re-armed
        assert ("c1", 42) in b._replies  # reply cache carried over

        second = capture_board(b)
        first.manager = second.manager = "board"
        first.captured_at = second.captured_at = 0.0
        assert second.to_wire() == first.to_wire()

    def test_restore_rejects_duplicate_session(self):
        env, testbed, a, b = make_pair(functional=False)
        ta = FakeTransport(env)
        drained(env, a)
        populate(env, a, ta)
        checkpoint = capture_session(a, "c1")
        b.sessions["c1"] = ClientSession("c1", ta, None)
        with pytest.raises(CheckpointError):
            restore_session(b, checkpoint, ta, None)

    def test_restore_out_of_memory_rolls_back(self):
        env, testbed, a, b = make_pair(functional=False)
        ta = FakeTransport(env)
        drained(env, a)
        populate(env, a, ta)
        checkpoint = capture_session(a, "c1")
        hog = b.board.allocate(b.board.memory.free)
        with pytest.raises(CheckpointError):
            restore_session(b, checkpoint, ta, None)
        assert "c1" not in b.sessions
        b.board.free(hog)
        assert len(b.board.memory) == 0  # nothing leaked by the rollback


class TestCapturePreconditions:
    def test_capture_requires_drained_manager(self):
        env, testbed, a, _b = make_pair(functional=False)
        a.sessions["c9"] = ClientSession("c9", FakeTransport(env), None)
        with pytest.raises(CheckpointError):
            capture_session(a, "c9")

    def test_capture_unknown_client(self):
        env, testbed, a, _b = make_pair(functional=False)
        drained(env, a)
        with pytest.raises(CheckpointError):
            capture_session(a, "nobody")


class TestDrainProtocol:
    def test_drain_defers_submits_until_resume(self):
        env, testbed, a, _b = make_pair(functional=False)
        transport = FakeTransport(env)
        drained(env, a)
        session = ClientSession("c1", transport, None)
        a.sessions["c1"] = session
        task = Task("c1", 0)
        task.append(Operation(type=OpType.MARKER, client="c1", queue_id=0,
                              tag=11))
        a._submit(task)
        assert task in a._drain_backlog
        env.run(until=env.now + 0.05)
        assert not transport.delivered  # frozen: nothing executed

        a.resume()
        env.run(until=env.now + 0.05)
        tags = [m.tag for m in transport.delivered
                if m.method == OP_COMPLETE]
        assert tags == [11]
        assert a.drain_seconds > 0

    def test_worker_parks_at_op_boundary_and_suffix_is_stealable(self):
        env, testbed, a, _b = make_pair(functional=False)
        transport = FakeTransport(env)
        session = ClientSession("c1", transport, None)
        a.sessions["c1"] = session
        buffer = a.board.allocate(32 << 20)
        session.buffers[buffer.id] = buffer

        task = Task("c1", 0)
        for tag in (21, 22):
            task.append(Operation(
                type=OpType.WRITE, client="c1", queue_id=0, tag=tag,
                buffer_id=buffer.id, nbytes=16 << 20, data=b"",
            ))
        a._submit(task)
        env.run(until=env.now + 1e-3)  # mid-way through the first DMA
        assert a._busy_workers == 1

        drained(env, a)  # returns only once the worker parked
        assert a._busy_workers == 0
        assert len(a._parked) == 1
        assert a._parked[0].index == 1  # first op done, second not started

        stolen = a.steal_parked_ops("c1")
        assert [op.tag for op in stolen] == [22]

        a.resume()
        env.run(until=env.now + 0.1)
        tags = [m.tag for m in transport.delivered
                if m.method == OP_COMPLETE]
        assert tags == [21]  # the stolen suffix never ran here

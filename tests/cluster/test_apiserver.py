"""Tests for the Kubernetes-model cluster API server."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterNode,
    PodPhase,
    PodSpec,
    SchedulingError,
    WatchEventType,
    build_testbed,
)
from repro.fpga import paper_testbed
from repro.rpc import Network
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    network = Network(env)
    cluster = Cluster(env)
    for spec in paper_testbed():
        cluster.add_node(ClusterNode(spec, network.host(spec.name, spec.host)))
    return cluster


def run(env, generator):
    return env.run(until=env.process(generator))


class TestTopology:
    def test_nodes_registered(self, cluster):
        assert sorted(cluster.nodes) == ["A", "B", "C"]
        assert cluster.node("A").is_master

    def test_duplicate_node_rejected(self, env, cluster):
        with pytest.raises(ValueError):
            cluster.add_node(cluster.node("A"))

    def test_unknown_node_lookup(self, cluster):
        with pytest.raises(KeyError):
            cluster.node("Z")


class TestPodLifecycle:
    def test_create_pod_runs_after_start_delay(self, env, cluster):
        pod = run(env, cluster.create_pod(PodSpec("p1", "fn")))
        assert pod.phase is PodPhase.RUNNING
        assert env.now == pytest.approx(Cluster.POD_START_DELAY)
        assert pod.node is not None

    def test_scheduler_spreads_by_pod_count(self, env, cluster):
        def flow(env):
            pods = []
            for index in range(6):
                pod = yield from cluster.create_pod(
                    PodSpec(f"p{index}", "fn")
                )
                pods.append(pod)
            return pods

        pods = run(env, flow(env))
        per_node = {}
        for pod in pods:
            per_node[pod.node.name] = per_node.get(pod.node.name, 0) + 1
        assert per_node == {"A": 2, "B": 2, "C": 2}

    def test_forced_node_placement(self, env, cluster):
        pod = run(env, cluster.create_pod(
            PodSpec("p1", "fn", node_name="C")
        ))
        assert pod.node.name == "C"

    def test_unknown_forced_node_fails(self, env, cluster):
        with pytest.raises(SchedulingError):
            run(env, cluster.create_pod(PodSpec("p1", "fn", node_name="Z")))

    def test_duplicate_pod_name_rejected(self, env, cluster):
        run(env, cluster.create_pod(PodSpec("p1", "fn")))
        with pytest.raises(ValueError):
            run(env, cluster.create_pod(PodSpec("p1", "fn")))

    def test_delete_pod_interrupts_workload(self, env, cluster):
        interrupted = []

        def workload(env):
            try:
                yield env.timeout(1000)
            except Interrupt as interrupt:
                interrupted.append(interrupt.cause)

        def flow(env):
            pod = yield from cluster.create_pod(PodSpec("p1", "fn"))
            pod.process = env.process(workload(env))
            yield env.timeout(1.0)
            cluster.delete_pod("p1")
            yield env.timeout(0.1)
            return pod

        pod = run(env, flow(env))
        assert pod.phase is PodPhase.TERMINATED
        assert interrupted == ["pod deleted"]
        assert "p1" not in cluster.pods
        assert "p1" not in pod.node.pods

    def test_delete_unknown_pod_is_noop(self, cluster):
        assert cluster.delete_pod("ghost") is None

    def test_patch_updates_env(self, env, cluster):
        run(env, cluster.create_pod(PodSpec("p1", "fn")))
        pod = cluster.patch_pod("p1", BF_MANAGER="dm-B")
        assert pod.spec.env["BF_MANAGER"] == "dm-B"

    def test_pods_of_function(self, env, cluster):
        def flow(env):
            yield from cluster.create_pod(PodSpec("a-1", "a"))
            yield from cluster.create_pod(PodSpec("a-2", "a"))
            yield from cluster.create_pod(PodSpec("b-1", "b"))

        run(env, flow(env))
        assert len(cluster.pods_of_function("a")) == 2


class TestAdmissionAndWatch:
    def test_admission_hook_mutates_spec(self, env, cluster):
        def hook(spec):
            spec.env["INJECTED"] = "yes"
            spec.node_name = "B"

        cluster.add_admission_hook(hook)
        pod = run(env, cluster.create_pod(PodSpec("p1", "fn")))
        assert pod.spec.env["INJECTED"] == "yes"
        assert pod.node.name == "B"

    def test_admission_hook_rejects(self, env, cluster):
        def hook(spec):
            raise PermissionError("quota exceeded")

        cluster.add_admission_hook(hook)
        with pytest.raises(PermissionError):
            run(env, cluster.create_pod(PodSpec("p1", "fn")))
        assert "p1" not in cluster.pods

    def test_watch_sees_lifecycle_events(self, env, cluster):
        events = []
        cluster.watch(lambda event: events.append(
            (event.type, event.pod.name, event.pod.phase)
        ))

        def flow(env):
            yield from cluster.create_pod(PodSpec("p1", "fn"))
            cluster.delete_pod("p1")

        run(env, flow(env))
        types = [t for t, _, _ in events]
        assert types == [
            WatchEventType.ADDED,
            WatchEventType.MODIFIED,   # → RUNNING
            WatchEventType.DELETED,
        ]


class TestTestbedBuilder:
    def test_builds_paper_testbed(self, env):
        testbed = build_testbed(env)
        assert sorted(testbed.cluster.nodes) == ["A", "B", "C"]
        assert len(testbed.managers) == 3
        assert testbed.manager_on("B").name == "dm-B"
        # Node A's board sits behind PCIe gen2.
        assert testbed.cluster.node("A").board.link.spec.generation == 2
        assert testbed.cluster.node("B").board.link.spec.generation == 3
        assert testbed.scraper is not None

    def test_scraper_collects_manager_metrics(self, env):
        testbed = build_testbed(env, scrape_interval=0.5)
        env.run(until=2.0)
        series = testbed.scraper.database.select_matching(
            "dm_busy_seconds_total", instance="dm-A"
        )
        assert len(series) == 1

"""Tests for the F1-style node autoscaler (paper future work)."""

import pytest

from repro.cluster import (
    AutoscalerPolicy,
    DeviceQuery,
    NodeAutoscaler,
    build_testbed,
)
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.loadgen import run_load
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    SobelApp,
)
from repro.sim import Environment


def make_stack(env):
    testbed = build_testbed(env, functional=False, scrape_interval=1.0)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper, metrics_window=10.0,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    return testbed, registry, router, gateway, controller


class TestScaleOut:
    def test_scale_out_wires_node_into_everything(self):
        env = Environment()
        testbed, registry, router, gateway, controller = make_stack(env)
        autoscaler = NodeAutoscaler(
            env, testbed, registry, router,
            policy=AutoscalerPolicy(boot_delay=5.0),
        )

        def flow():
            manager = yield from autoscaler.scale_out()
            return manager

        manager = env.run(until=env.process(flow()))
        assert env.now == pytest.approx(5.0)
        assert manager.name == "dm-F1-1"
        assert "F1-1" in testbed.cluster.nodes
        assert "dm-F1-1" in [d.name for d in registry.devices.all()]
        assert "dm-F1-1" in router.managers()
        assert autoscaler.scale_outs == 1

    def test_new_node_receives_allocations(self):
        env = Environment()
        testbed, registry, router, gateway, controller = make_stack(env)
        autoscaler = NodeAutoscaler(
            env, testbed, registry, router,
            policy=AutoscalerPolicy(boot_delay=1.0,
                                    scale_in_threshold=-1.0),
        )

        def flow():
            yield from autoscaler.scale_out()
            # Fill every original board first.
            for index in range(1, 5):
                yield from gateway.deploy(FunctionSpec(
                    name=f"sobel-{index}",
                    app_factory=lambda: SobelApp(width=64, height=64),
                    device_query=DeviceQuery(accelerator="sobel"),
                ))
                yield from controller.wait_ready(f"sobel-{index}")

        env.run(until=env.process(flow()))
        devices = {d.name: len(d.instances) for d in registry.devices.all()}
        # 4 functions over 4 devices: the F1 node took one.
        assert devices["dm-F1-1"] == 1

    def test_utilization_triggers_scale_out(self):
        env = Environment()
        testbed, registry, router, gateway, controller = make_stack(env)
        autoscaler = NodeAutoscaler(
            env, testbed, registry, router,
            policy=AutoscalerPolicy(
                scale_out_threshold=0.3, window=5.0, interval=2.0,
                cooldown=10.0, boot_delay=2.0,
            ),
        )

        def flow():
            for index in range(1, 4):
                yield from gateway.deploy(FunctionSpec(
                    name=f"sobel-{index}",
                    app_factory=lambda: SobelApp(),
                    device_query=DeviceQuery(accelerator="sobel"),
                ))
                yield from controller.wait_ready(f"sobel-{index}")
            # Push every board well past 30% utilization.
            loads = [
                env.process(run_load(env, gateway, f"sobel-{index}",
                                     rate=40.0, duration=40.0))
                for index in range(1, 4)
            ]
            for load in loads:
                yield load

        env.run(until=env.process(flow()))
        assert autoscaler.scale_outs >= 1
        assert any(name.startswith("F1-") for name in testbed.cluster.nodes)


class TestScaleIn:
    def test_scale_in_removes_idle_added_node(self):
        env = Environment()
        testbed, registry, router, gateway, controller = make_stack(env)
        autoscaler = NodeAutoscaler(
            env, testbed, registry, router,
            policy=AutoscalerPolicy(boot_delay=1.0),
        )

        def flow():
            yield from autoscaler.scale_out()

        env.run(until=env.process(flow()))
        assert autoscaler.scale_in("F1-1")
        assert "F1-1" not in testbed.cluster.nodes
        assert autoscaler.scale_ins == 1

    def test_scale_in_refuses_busy_node(self):
        env = Environment()
        testbed, registry, router, gateway, controller = make_stack(env)
        autoscaler = NodeAutoscaler(
            env, testbed, registry, router,
            policy=AutoscalerPolicy(boot_delay=1.0,
                                    scale_in_threshold=-1.0),
        )

        def flow():
            yield from autoscaler.scale_out()
            for index in range(1, 5):
                yield from gateway.deploy(FunctionSpec(
                    name=f"sobel-{index}",
                    app_factory=lambda: SobelApp(width=64, height=64),
                    device_query=DeviceQuery(accelerator="sobel"),
                ))
                yield from controller.wait_ready(f"sobel-{index}")

        env.run(until=env.process(flow()))
        # The F1 node carries an instance now: refuse to retire it.
        assert not autoscaler.scale_in("F1-1")
        assert "F1-1" in testbed.cluster.nodes

    def test_scale_in_unknown_node(self):
        env = Environment()
        testbed, registry, router, gateway, controller = make_stack(env)
        autoscaler = NodeAutoscaler(env, testbed, registry, router)
        assert not autoscaler.scale_in("ghost")

"""Queueing-theory validation of the simulator.

A single board with deterministic kernel service times fed by Poisson
arrivals is an M/D/1 queue.  If the DES kernel, the board model and the
Device Manager bookkeeping are unbiased, simulated mean waits must match
Pollaczek–Khinchine within sampling error.  This is the strongest
systemic-correctness check in the suite.
"""

import math

import numpy as np
import pytest

from repro.analysis import md1_response, md1_wait, mm1_wait, utilization
from repro.fpga import FPGABoard, standard_library
from repro.sim import Environment


class TestFormulas:
    def test_utilization(self):
        assert utilization(10.0, 0.05) == pytest.approx(0.5)

    def test_md1_wait_half_of_mm1(self):
        # With equal rates, M/D/1 queue wait is half the M/M/1 wait.
        lam, mu = 8.0, 10.0
        assert md1_wait(lam, 1 / mu) == pytest.approx(
            mm1_wait(lam, mu) / 2.0
        )

    def test_overload_is_infinite(self):
        assert math.isinf(md1_wait(11.0, 0.1))
        assert math.isinf(mm1_wait(11.0, 10.0))

    def test_zero_load_zero_wait(self):
        assert md1_wait(0.0, 0.1) == 0.0

    def test_response_is_wait_plus_service(self):
        lam, service = 5.0, 0.05
        assert md1_response(lam, service) == pytest.approx(
            md1_wait(lam, service) + service
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            utilization(-1.0, 0.1)


class TestSimulatedMD1:
    """Poisson arrivals to one board ≡ M/D/1; compare with theory."""

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_board_queue_matches_pollaczek_khinchine(self, rho):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, functional=False)
        env.run(until=env.process(board.program(library.get("mm"))))

        bufs = [board.allocate(64) for _ in range(3)]
        n = 640
        service = library.get("mm").kernel("mm").duration(
            {"m": n, "n": n, "k": n}
        )
        arrival_rate = rho / service
        rng = np.random.default_rng(42)
        waits = []
        horizon = 4000 * service / rho  # ~4000 arrivals

        def source():
            while env.now < horizon:
                yield env.timeout(rng.exponential(1.0 / arrival_rate))
                env.process(job())

        def job():
            arrived = env.now
            start_event = {}

            def run():
                # Queue wait = time to acquire the board's compute slot.
                with board.compute.request() as grant:
                    yield grant
                    start_event["start"] = env.now
                    yield env.timeout(service)

            proc = env.process(run())
            yield proc
            waits.append(start_event["start"] - arrived)

        env.process(source())
        env.run()

        measured = sum(waits) / len(waits)
        predicted = md1_wait(arrival_rate, service)
        assert len(waits) > 2000
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_executes_through_board_model(self):
        """Same validation through board.execute (covers its locking)."""
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, functional=False)
        env.run(until=env.process(board.program(library.get("mm"))))
        bufs = [board.allocate(64) for _ in range(3)]
        n = 640
        service = library.get("mm").kernel("mm").duration(
            {"m": n, "n": n, "k": n}
        )
        rho = 0.7
        arrival_rate = rho / service
        rng = np.random.default_rng(7)
        responses = []
        horizon = 3000 * service / rho

        def source():
            while env.now < horizon:
                yield env.timeout(rng.exponential(1.0 / arrival_rate))
                env.process(job())

        def job():
            arrived = env.now
            yield from board.execute("mm", [*bufs, n, n, n])
            responses.append(env.now - arrived)

        env.process(source())
        env.run()
        measured = sum(responses) / len(responses)
        predicted = md1_response(arrival_rate, service)
        # board.execute adds the kernel's fixed launch overhead to service.
        assert measured == pytest.approx(predicted, rel=0.15)

"""Tests for the trace-based request latency breakdown."""

import pytest

from repro.analysis import (
    default_pod_to_function,
    render_breakdown,
    request_breakdown,
)
from repro.sim import Environment
from repro.trace import Tracer


class TestPodMapping:
    def test_strips_instance_suffix(self):
        assert default_pod_to_function("sobel-1-i2") == "sobel-1"
        assert default_pod_to_function("mm-1-i13") == "mm-1"

    def test_leaves_plain_names(self):
        assert default_pod_to_function("sobel-1") == "sobel-1"


class TestBreakdown:
    def make_trace(self):
        env = Environment()
        tracer = Tracer(env)
        # Two requests of 10 ms each; their tasks: 2 ms queued, 5 ms device.
        for index in range(2):
            start = index * 0.1
            tracer.span("request", "sobel-1", "gateway", start,
                        start + 0.010, latency=0.010)
            tracer.span("task", f"task#{index}", "dm-B", start + 0.004,
                        start + 0.009, client="sobel-1-i1", queued=0.002)
        return tracer

    def test_stage_means(self):
        breakdowns = request_breakdown(self.make_trace())
        b = breakdowns["sobel-1"]
        assert b.requests == 2
        assert b.mean_latency == pytest.approx(0.010)
        assert b.mean_queue_wait == pytest.approx(0.002)
        assert b.mean_device_time == pytest.approx(0.005)
        assert b.mean_overhead == pytest.approx(0.003)

    def test_multiple_tasks_per_request_scale(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.span("request", "alexnet-1", "gateway", 0.0, 0.100,
                    latency=0.100)
        for layer in range(8):  # 8 tasks for the one request
            t = 0.01 * layer
            tracer.span("task", f"task#{layer}", "dm-A", t, t + 0.008,
                        client="alexnet-1-i1", queued=0.001)
        b = request_breakdown(tracer)["alexnet-1"]
        assert b.mean_device_time == pytest.approx(8 * 0.008)
        assert b.mean_queue_wait == pytest.approx(8 * 0.001)

    def test_function_without_tasks(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.span("request", "native-fn", "gateway", 0, 0.02,
                    latency=0.02)
        b = request_breakdown(tracer)["native-fn"]
        assert b.mean_device_time == 0.0
        assert b.mean_overhead == pytest.approx(0.02)

    def test_render(self):
        text = render_breakdown(request_breakdown(self.make_trace()))
        assert "sobel-1" in text
        assert "Queue ms" in text


class TestEndToEndBreakdown:
    def test_full_stack_breakdown_sums_sanely(self):
        """Trace a real load run; stages must sum to ≤ latency."""
        from repro.cluster import DeviceQuery, build_testbed
        from repro.core.registry import AcceleratorsRegistry
        from repro.core.remote_lib import ManagerAddress, PlatformRouter
        from repro.loadgen import run_load
        from repro.serverless import (
            FunctionController,
            FunctionSpec,
            Gateway,
            SobelApp,
        )
        from repro.trace import attach_gateway, attach_testbed

        env = Environment()
        testbed = build_testbed(env, functional=False)
        registry = AcceleratorsRegistry(
            env, testbed.cluster, list(testbed.managers.values()),
            scraper=testbed.scraper,
        )
        router = PlatformRouter(env, testbed.network, testbed.library)
        router.add_managers(
            [ManagerAddress.of(m) for m in testbed.managers.values()]
        )
        gateway = Gateway(env, testbed.cluster)
        controller = FunctionController(env, testbed.cluster, gateway,
                                        router)
        tracer = Tracer(env)
        attach_testbed(tracer, testbed)
        attach_gateway(tracer, gateway)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="sobel-1",
                app_factory=lambda: SobelApp(),
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready("sobel-1")
            yield from run_load(env, gateway, "sobel-1", rate=20.0,
                                duration=5.0)

        env.run(until=env.process(flow()))
        b = request_breakdown(tracer)["sobel-1"]
        assert b.requests > 50
        # Device time dominates for 1080p Sobel (~14 ms of ~21 ms).
        assert 0.010 < b.mean_device_time < 0.020
        assert b.mean_queue_wait < 0.005
        assert b.mean_overhead > 0.0
        assert (b.mean_queue_wait + b.mean_device_time
                <= b.mean_latency + 1e-9)

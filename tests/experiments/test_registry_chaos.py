"""Registry-chaos experiment: golden regression + acceptance invariants.

``data/golden_registry_chaos.json`` pins the quick-mode digest of both
recovery arms: the Accelerators Registry fail-stopped mid-reconfiguration-
storm, restarted from snapshot+WAL (durable) or taken over by the warm
standby (replicated).  The run is seed-reproducible, so any drift is a
behaviour change in the durability/recovery machinery, never noise.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.config import LoadTiming
from repro.experiments.registry_chaos import (
    RegistryChaosSpec,
    run_registry_chaos,
    run_registry_chaos_mode,
)

GOLDEN = Path(__file__).parent / "data" / "golden_registry_chaos.json"


@pytest.fixture(scope="module")
def monkeypatch_module():
    with pytest.MonkeyPatch.context() as mp:
        yield mp


@pytest.fixture(scope="module")
def chaos_result(monkeypatch_module):
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    monkeypatch_module.delenv("REPRO_REGISTRY", raising=False)
    return run_registry_chaos()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


class TestGoldenRegistryChaos:
    def test_digest_matches_golden(self, chaos_result, golden):
        digest = chaos_result.to_golden()
        drift = [
            f"{mode}.{key}"
            for mode in sorted(set(golden) | set(digest))
            for key in sorted(
                set(golden.get(mode, {})) | set(digest.get(mode, {}))
            )
            if golden.get(mode, {}).get(key) != digest.get(mode, {}).get(key)
        ]
        assert digest == golden, f"registry-chaos digest drifted in {drift}"

    def test_no_double_allocations_no_lost_instances(self, chaos_result):
        # The two safety invariants of the acceptance criteria.
        for arm in (chaos_result.durable, chaos_result.replicated):
            assert arm.double_allocations == 0, arm.mode
            assert arm.lost_instances == 0, arm.mode

    def test_blackout_is_bounded(self, chaos_result):
        spec = chaos_result.spec
        durable, replicated = chaos_result.durable, chaos_result.replicated
        # Durable: outage = scripted restart delay + replay time.
        assert spec.restart_after <= durable.blackout_seconds \
            <= spec.restart_after + 0.5
        # Replicated: the standby notices the expired lease within one
        # sync tick past the timeout, then replays its WAL copy.
        assert replicated.blackout_seconds \
            <= spec.standby.lease_timeout + spec.standby.sync_interval + 0.5
        assert replicated.blackout_seconds < durable.blackout_seconds

    def test_stale_epoch_commands_are_fenced(self, chaos_result):
        for arm in (chaos_result.durable, chaos_result.replicated):
            assert arm.zombie_fenced >= 1, arm.mode
            assert arm.zombie_accepted == 0, arm.mode
            assert arm.fenced_commands >= 1, arm.mode
            assert arm.epoch == 2, arm.mode  # exactly one recovery

    def test_blackout_admissions_denied_then_absorbed(self, chaos_result):
        for arm in (chaos_result.durable, chaos_result.replicated):
            # The FIR storm deploy landed in the blackout, was refused with
            # the structured retryable error, and succeeded on retry.
            assert arm.denied_admissions >= 1, arm.mode
            assert arm.deploy_retries >= arm.denied_admissions, arm.mode
            assert arm.hung_events == 0, arm.mode

    def test_durable_arm_replays_the_wal(self, chaos_result):
        durable = chaos_result.durable
        assert durable.snapshots_taken >= 1
        assert durable.replayed_ops >= 1  # the storm rode the WAL
        assert durable.replay_applied >= 1

    def test_standby_tails_and_takes_over(self, chaos_result):
        replicated = chaos_result.replicated
        assert replicated.takeovers == 1
        assert replicated.records_tailed >= 1
        assert replicated.standby_bytes > 0
        assert chaos_result.durable.takeovers == 0

    def test_availability_stays_high(self, chaos_result):
        for arm in (chaos_result.durable, chaos_result.replicated):
            assert arm.completed > 0, arm.mode
            assert arm.availability >= 0.99, arm.mode


def test_same_seed_same_digest(monkeypatch_module):
    """Bit-reproducibility: two identical seeded runs, identical digests."""
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    monkeypatch_module.delenv("REPRO_REGISTRY", raising=False)
    spec = RegistryChaosSpec(timing=LoadTiming(warmup=0.5, duration=8.0))
    first = run_registry_chaos_mode("durable", spec).to_golden()
    second = run_registry_chaos_mode("durable", spec).to_golden()
    assert first == second

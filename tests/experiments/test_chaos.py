"""Chaos experiment: golden regression + acceptance invariants.

``data/golden_chaos.json`` pins the quick-mode chaos digest: Table-II Sobel
load under 1% control-message loss with a Device Manager crash and restart
mid-window.  The run is seed-reproducible, so any drift is a behaviour
change in the fault plane or the recovery machinery, never noise.
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments.chaos import ChaosSpec, run_chaos
from repro.experiments.config import LoadTiming

GOLDEN = Path(__file__).parent / "data" / "golden_chaos.json"


@pytest.fixture(scope="module")
def monkeypatch_module():
    with pytest.MonkeyPatch.context() as mp:
        yield mp


@pytest.fixture(scope="module")
def chaos_result(monkeypatch_module):
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    return run_chaos()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


class TestGoldenChaos:
    def test_digest_matches_golden(self, chaos_result, golden):
        digest = chaos_result.to_golden()
        drift = [
            key for key in sorted(set(golden) | set(digest))
            if golden.get(key) != digest.get(key)
        ]
        assert digest == golden, f"chaos digest drifted in {drift}"

    def test_no_hung_client_events(self, chaos_result):
        # Zero CL-event FSMs left unresolved: every in-flight op ended
        # COMPLETE or a structured error even through the crash.
        assert chaos_result.hung_events == 0

    def test_availability_stays_high(self, chaos_result):
        assert chaos_result.errors == 0 or chaos_result.availability >= 0.99
        assert chaos_result.completed > 0

    def test_crash_was_detected_and_recovered(self, chaos_result):
        assert chaos_result.device_failures == 1
        assert chaos_result.recoveries_detected == 1
        assert chaos_result.detection_seconds > 0
        assert not math.isnan(chaos_result.recovery_seconds)
        assert chaos_result.recovery_seconds > 0
        assert chaos_result.migrations >= 1  # victims moved off the board

    def test_downtime_ledger(self, chaos_result):
        # Per-board downtime is reported for post-mortems, but stays out
        # of the golden digest (bit-identical to the pre-ledger runs).
        ledger = chaos_result.downtime
        assert set(ledger) == {"dm-A", "dm-B", "dm-C"}
        assert ledger["dm-B"]["crash_s"] > 0
        for name, cell in ledger.items():
            if name != "dm-B":
                assert cell["crash_s"] == 0.0
            assert cell["reconfiguration_s"] >= 2.5  # the initial program
        assert "downtime" not in chaos_result.to_golden()

    def test_faults_actually_fired(self, chaos_result):
        # The run must have been genuinely hostile, not a fair-weather pass.
        plane = chaos_result.plane_counters
        assert plane["dropped"] > 0
        assert plane["duplicated"] > 0
        assert plane["delayed"] > 0
        assert chaos_result.rpc_retries > 0 or chaos_result.gateway_retries > 0
        assert [what for _, what in chaos_result.script_log] == [
            "crash dm-B", "restart dm-B"
        ]


def test_same_seed_same_digest(monkeypatch_module):
    """Bit-reproducibility: two identical seeded runs, identical digests."""
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    spec = ChaosSpec(timing=LoadTiming(warmup=0.5, duration=2.0),
                     crash_fraction=0.3, restart_fraction=0.3)
    first = run_chaos(spec).to_golden()
    second = run_chaos(spec).to_golden()
    assert first == second

"""Copy-accounting and result invariance of the zero-copy data plane.

``data/golden_table2.json`` was captured from the quick-mode Sobel Table II
run *before* the zero-copy refactor (views instead of bytes through
DDR → DMA → RPC → client) and the DES hot-path optimization.  Both changes
must be timing-neutral and accounting-neutral: every simulated latency,
utilization and throughput figure and every CopyStats counter must stay
bit-for-bit identical.  A mismatch here means an optimization changed the
simulation's behaviour, not just its speed.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.tables import run_use_case

GOLDEN = Path(__file__).parent / "data" / "golden_table2.json"


@pytest.fixture(scope="module")
def table2_report(monkeypatch_module):
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    return run_use_case("sobel")


@pytest.fixture(scope="module")
def monkeypatch_module():
    with pytest.MonkeyPatch.context() as mp:
        yield mp


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def _observed(scenario) -> dict:
    return {
        "functions": [
            {
                "function": f.function,
                "node": f.node,
                "device": f.device,
                "utilization": repr(f.utilization),
                "latency": repr(f.latency),
                "processed": repr(f.processed),
                "target": repr(f.target),
            }
            for f in scenario.functions
        ],
        "copies": scenario.copies,
        "bytes_copied": scenario.bytes_copied,
    }


def test_every_golden_scenario_is_covered(table2_report, golden):
    keys = {f"{rt}|{cfg}" for rt, cfg in table2_report}
    assert keys == set(golden["scenarios"])


def test_results_bit_identical_to_pre_zero_copy_goldens(table2_report,
                                                        golden):
    for (runtime, configuration), scenario in table2_report.items():
        want = golden["scenarios"][f"{runtime}|{configuration}"]
        got = _observed(scenario)
        assert got["functions"] == want["functions"], (
            f"{runtime}/{configuration}: simulated results drifted from "
            f"the pre-zero-copy goldens"
        )


def test_copy_accounting_bit_identical(table2_report, golden):
    for (runtime, configuration), scenario in table2_report.items():
        want = golden["scenarios"][f"{runtime}|{configuration}"]
        assert scenario.copies == want["copies"], (
            f"{runtime}/{configuration}: data-plane copy count changed"
        )
        assert scenario.bytes_copied == want["bytes_copied"], (
            f"{runtime}/{configuration}: data-plane byte count changed"
        )


def test_native_runtime_reports_no_transport_copies(table2_report):
    for (runtime, _), scenario in table2_report.items():
        if runtime == "native":
            assert scenario.copies == 0
            assert scenario.bytes_copied == 0

"""Tests for the multi-function load-test harness (shortened windows)."""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.experiments.config import LoadTiming
from repro.serverless import SobelApp

FAST = LoadTiming(warmup=1.0, duration=5.0)


@pytest.fixture(scope="module")
def bf_low():
    return run_scenario(
        use_case="sobel", configuration="low", runtime="blastfunction",
        app_factory=lambda: SobelApp(),
        accelerator="sobel",
        rates=rates_for("sobel", "low", "blastfunction"),
        timing=FAST,
    )


@pytest.fixture(scope="module")
def native_low():
    return run_scenario(
        use_case="sobel", configuration="low", runtime="native",
        app_factory=lambda: SobelApp(),
        accelerator="sobel",
        rates=rates_for("sobel", "low", "native"),
        timing=FAST,
    )


class TestBlastFunctionScenario:
    def test_deploys_five_functions(self, bf_low):
        assert len(bf_low.functions) == 5
        assert [f.function for f in bf_low.functions] == [
            f"sobel-{i}" for i in range(1, 6)
        ]

    def test_functions_spread_over_three_devices(self, bf_low):
        devices = [f.device for f in bf_low.functions]
        assert len(set(devices)) == 3

    def test_low_load_meets_targets(self, bf_low):
        for fn in bf_low.functions:
            assert fn.processed == pytest.approx(fn.target, rel=0.15)

    def test_latencies_in_paper_band(self, bf_low):
        for fn in bf_low.functions:
            assert 15e-3 < fn.latency < 45e-3

    def test_utilization_tracks_rate(self, bf_low):
        # Utilization ≈ rate × device-seconds/request; higher-rate functions
        # must show higher utilization.
        by_rate = sorted(bf_low.functions, key=lambda f: f.target)
        assert by_rate[0].utilization < by_rate[-1].utilization
        for fn in bf_low.functions:
            assert 0.0 < fn.utilization < 1.0

    def test_aggregates_consistent(self, bf_low):
        assert bf_low.total_processed == pytest.approx(
            sum(f.processed for f in bf_low.functions)
        )
        assert bf_low.total_target == 55.0


class TestNativeScenario:
    def test_deploys_three_pinned_functions(self, native_low):
        assert len(native_low.functions) == 3
        assert [f.node for f in native_low.functions] == ["A", "B", "C"]

    def test_low_load_meets_targets(self, native_low):
        for fn in native_low.functions:
            assert fn.processed == pytest.approx(fn.target, rel=0.15)

    def test_node_a_is_slowest(self, native_low):
        by_node = {f.node: f for f in native_low.functions}
        assert by_node["A"].latency > by_node["B"].latency
        assert by_node["A"].latency > by_node["C"].latency


class TestCrossScenario:
    def test_bf_supports_more_aggregate_load(self, bf_low, native_low):
        assert bf_low.total_target > native_low.total_target
        assert bf_low.total_processed > native_low.total_processed

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(
                use_case="sobel", configuration="low", runtime="gpu",
                app_factory=lambda: SobelApp(),
                accelerator="sobel", rates=[1.0], timing=FAST,
            )

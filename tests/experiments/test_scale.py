"""Scale-sweep experiment: cell mechanics on a paper-sized cluster.

The sweep's big cells live in ``python -m repro.experiments scale`` and
the CI smoke; here a 3-board cell with a sub-second window checks that a
cell deploys the right workload, measures what it claims to measure, and
serializes a usable baseline.
"""

import json

import pytest

from repro.experiments.config import LoadTiming
from repro.experiments.scale import (
    FUNCTIONS_PER_BOARD,
    ScaleCell,
    _workload_plan,
    render_scale,
    run_scale_cell,
    write_bench_json,
)

TINY = LoadTiming(warmup=0.25, duration=0.75)


@pytest.fixture(scope="module")
def cell() -> ScaleCell:
    return run_scale_cell(3, timing=TINY)


class TestWorkloadPlan:
    def test_density_matches_the_paper(self):
        assert round(3 * FUNCTIONS_PER_BOARD) == 5

    def test_interleaves_use_cases_with_table1_rates(self):
        plan = _workload_plan(6)
        assert [use_case for _n, use_case, _r in plan] == [
            "sobel", "mm", "sobel", "mm", "sobel", "mm"
        ]
        assert [rate for _n, _u, rate in plan] == [
            20.0, 28.0, 15.0, 21.0, 10.0, 14.0
        ]
        assert len({name for name, _u, _r in plan}) == 6


class TestCell:
    def test_deploys_paper_density_and_serves_load(self, cell):
        assert cell.boards == 3
        assert cell.functions == 5
        assert cell.allocations == 5
        assert cell.requests > 0
        assert cell.migrations == 0  # interleaved deploys never displace

    def test_measures_all_planes(self, cell):
        assert cell.alloc_ms > 0
        assert cell.indexed_alloc_us > 0
        assert cell.oracle_alloc_us > 0
        assert cell.alloc_speedup == pytest.approx(
            cell.oracle_alloc_us / cell.indexed_alloc_us
        )
        assert cell.scrapes > 0
        assert cell.scrape_ms > 0
        assert cell.sim_events > 0
        assert cell.events_per_sec > 0
        assert 0 < cell.p50_ms <= cell.p99_ms

    def test_render_includes_every_cell(self, cell):
        text = render_scale([cell])
        assert "Scale sweep" in text
        assert "3" in text.splitlines()[3]


class TestBenchJson:
    def test_round_trips_cells_keyed_by_boards(self, cell, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        write_bench_json([cell], path)
        payload = json.loads(path.read_text())
        assert set(payload) == {"python", "timing", "cells"}
        record = payload["cells"]["3"]
        assert record["boards"] == 3
        assert record["functions"] == 5
        assert record["indexed_alloc_us"] > 0
        assert record["events_per_sec"] > 0

"""The calibration self-check must stay within tolerance of its anchors."""

import pytest

from repro.experiments.calibration import ANCHORS, run_calibration


class TestCalibrationAnchors:
    def test_every_anchor_within_20_percent(self):
        _text, records = run_calibration()
        for record in records:
            assert abs(record["relative_deviation"]) < 0.20, (
                f"{record['name']} drifted: expected "
                f"{record['expected_seconds']}s, measured "
                f"{record['measured_seconds']}s"
            )

    def test_hard_anchors_within_5_percent(self):
        """The directly-pinned constants must be tight."""
        tight = {
            "PCIe gen3 x8, 1 GiB DMA",
            "shm copy, 2 GiB",
            "Sobel kernel, 1920×1080",
            "MM kernel, 4096³",
            "full reconfiguration",
        }
        _text, records = run_calibration()
        for record in records:
            if record["name"] in tight:
                assert abs(record["relative_deviation"]) < 0.05

    def test_report_includes_all_anchors(self):
        text, records = run_calibration()
        assert len(records) == len(ANCHORS)
        for anchor in ANCHORS:
            assert anchor.name in text

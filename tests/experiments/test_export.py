"""Tests for experiment result export and the CLI entry point."""

import csv
import io
import json

import pytest

from repro.experiments.export import (
    scenario_to_record,
    scenarios_to_csv,
    scenarios_to_records,
    sweep_to_csv,
    sweep_to_records,
    to_json,
    write_json,
)
from repro.experiments.fig4 import SweepPoint
from repro.experiments.loadtest import FunctionResult, ScenarioResult


def make_scenario():
    result = ScenarioResult("sobel", "low", "blastfunction")
    result.functions.append(FunctionResult(
        function="sobel-1", node="B", device="dm-B",
        utilization=0.21, latency=0.0203, processed=19.9, target=20.0,
    ))
    return result


class TestSweepExport:
    def test_records(self):
        points = [SweepPoint("1KB", 1024, "native", 0.0002)]
        records = sweep_to_records(points)
        assert records == [{
            "label": "1KB", "size_bytes": 1024,
            "system": "native", "rtt_seconds": 0.0002,
        }]

    def test_csv_round_trip(self):
        points = [
            SweepPoint("1KB", 1024, "native", 0.0002),
            SweepPoint("1KB", 1024, "blastfunction_shm", 0.0018),
        ]
        text = sweep_to_csv(points)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[1]["system"] == "blastfunction_shm"
        assert float(rows[1]["rtt_seconds"]) == pytest.approx(0.0018)


class TestScenarioExport:
    def test_record_shape(self):
        record = scenario_to_record(make_scenario())
        assert record["runtime"] == "blastfunction"
        assert record["functions"][0]["utilization_pct"] == pytest.approx(21.0)
        assert record["total_target_rps"] == 20.0

    def test_records_sorted_by_key(self):
        results = {
            ("native", "low"): make_scenario(),
            ("blastfunction", "low"): make_scenario(),
        }
        records = scenarios_to_records(results)
        assert len(records) == 2

    def test_csv_one_row_per_function(self):
        results = {("blastfunction", "low"): make_scenario()}
        rows = list(csv.DictReader(io.StringIO(scenarios_to_csv(results))))
        assert len(rows) == 1
        assert rows[0]["function"] == "sobel-1"
        assert rows[0]["node"] == "B"

    def test_json_serializable(self):
        record = scenario_to_record(make_scenario())
        parsed = json.loads(to_json(record))
        assert parsed["use_case"] == "sobel"

    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_json({"a": [1, 2]}, str(path))
        assert json.loads(path.read_text()) == {"a": [1, 2]}


class TestCLI:
    def test_table1_runs_and_writes_json(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "t1.json"
        assert main(["table1", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert json.loads(path.read_text()) == {"table1": []}

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table99"])

    def test_fig4_cli_writes_sweep_records(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.experiments import __main__ as cli

        fake_points = [SweepPoint("1KB", 1024, "native", 0.0002)]
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig4a",
            cli._fig(lambda: fake_points, "Fig. 4(a) (stub)"),
        )
        path = tmp_path / "fig.json"
        assert cli.main(["fig4a", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["fig4a"][0]["system"] == "native"

"""The control-plane rewrite must not move a single golden byte.

PR 3 replaced the allocator, the metrics pipeline, and the periodic-timer
machinery under the experiments.  None of that is allowed to change any
*decision* the system makes, so the golden files regression-tested by
``test_zero_copy_regression.py`` and ``test_chaos.py`` must remain
bit-identical — not merely "equivalent after regeneration".  Pinning the
SHA-256 of the committed bytes catches the failure mode those tests
cannot: someone silently regenerating a golden to paper over drift.

If a future PR changes simulated behaviour *on purpose*, regenerate the
golden, update the digest here, and say so in the commit message.
"""

import hashlib
from pathlib import Path

import pytest

DATA = Path(__file__).parent / "data"

GOLDEN_DIGESTS = {
    "golden_table2.json":
        "d8b3fb66dc84f3b31b890512a215873d09a3ea95a026919e92cf2dc160448eee",
    "golden_chaos.json":
        "a19c303714fc02c4a1ff31f99a72b7ad1bd800c889df802e7fe18d7cc0d23da4",
}


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_golden_bytes_are_pinned(name):
    digest = hashlib.sha256((DATA / name).read_bytes()).hexdigest()
    assert digest == GOLDEN_DIGESTS[name], (
        f"{name} changed on disk; goldens may only change together with "
        f"an intentional, explained behaviour change"
    )

"""Tests for report rendering and the experiment configuration tables."""

import pytest

from repro.experiments import TABLE1_RATES, rates_for, run_table1
from repro.experiments.report import fmt_ms, fmt_pct, ratio, render_table


class TestRenderTable:
    def test_header_and_rule(self):
        text = render_table(["a", "bb"], [[1, 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert set(lines[2]) <= {"-", " "}

    def test_column_alignment(self):
        text = render_table(["name", "v"], [["x", 1], ["longer", 2]])
        lines = text.splitlines()
        assert lines[-1].startswith("longer")
        # Both data rows place the value in the same column.
        assert lines[-2].index("1") == lines[-1].index("2")

    def test_none_renders_as_dash(self):
        text = render_table(["a"], [[None]])
        assert text.splitlines()[-1].strip() == "-"

    def test_float_formatting(self):
        text = render_table(["a", "b", "c"], [[123.456, 1.234, 0.01234]])
        assert "123.5" in text
        assert "1.23" in text
        assert "0.012" in text

    def test_nan_renders(self):
        text = render_table(["a"], [[float("nan")]])
        assert "nan" in text


class TestHelpers:
    def test_ratio(self):
        assert ratio(2.0, 4.0) == 0.5
        assert ratio(1.0, 0.0) is None
        assert ratio(float("nan"), 1.0) is None

    def test_units(self):
        assert fmt_ms(0.0215) == pytest.approx(21.5)
        assert fmt_pct(0.305) == pytest.approx(30.5)


class TestTable1:
    def test_matches_paper_exactly(self):
        assert TABLE1_RATES["sobel"]["medium"] == [35, 30, 25, 20, 15]
        assert TABLE1_RATES["mm"]["high"] == [84, 70, 49, 42, 21]
        assert TABLE1_RATES["alexnet"]["medium"] == [6, 3, 3, 3, 3]

    def test_native_uses_first_three_columns(self):
        assert rates_for("sobel", "high", "native") == [60, 50, 35]
        assert rates_for("sobel", "high", "blastfunction") == [
            60, 50, 35, 30, 15
        ]

    def test_render_includes_all_rows(self):
        text = run_table1()
        assert text.count("sobel") == 3
        assert text.count("alexnet") == 2


class TestRenderBars:
    def test_bars_scale_and_label(self):
        from repro.experiments.report import render_bars

        text = render_bars(
            [("1KB", [("native", 0.2), ("grpc", 1.9)]),
             ("1MB", [("native", 0.4), ("grpc", 2.5)])],
            width=20,
        )
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 4
        assert "native" in lines[0]
        assert lines[1].count("#") > lines[0].count("#")

    def test_bars_handle_missing_values(self):
        from repro.experiments.report import render_bars

        text = render_bars([("x", [("a", None), ("b", 1.0)])])
        assert "-" in text

    def test_bars_empty(self):
        from repro.experiments.report import render_bars

        assert render_bars([]) == "(no data)"

    def test_linear_scale(self):
        from repro.experiments.report import render_bars

        text = render_bars(
            [("g", [("half", 5.0), ("full", 10.0)])],
            width=10, log_scale=False,
        )
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

"""Migration experiment: golden regression + acceptance invariants.

``data/golden_migration.json`` pins the quick-mode digest of the
reconfiguration storm: four Sobel tenants under load while three storm
deployments (MM, FIR, histogram) force Algorithm 1 to reprogram boards
and displace the tenants — once with the paper's create-before-delete
restart moves, once with the checkpoint/restore plane of ``repro.live``.
Both arms are seed-deterministic, so any drift is a behaviour change in
the migration machinery, never noise.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.config import LoadTiming
from repro.experiments.migration import (
    MigrationSpec,
    run_migration,
    run_migration_mode,
)

GOLDEN = Path(__file__).parent / "data" / "golden_migration.json"


@pytest.fixture(scope="module")
def monkeypatch_module():
    with pytest.MonkeyPatch.context() as mp:
        yield mp


@pytest.fixture(scope="module")
def migration_result(monkeypatch_module):
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    monkeypatch_module.delenv("REPRO_MIGRATION", raising=False)
    return run_migration()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


class TestGoldenMigration:
    def test_digest_matches_golden(self, migration_result, golden):
        digest = migration_result.to_golden()
        drift = [
            f"{mode}.{key}"
            for mode in sorted(set(golden) | set(digest))
            for key in sorted(
                set(golden.get(mode, {})) | set(digest.get(mode, {}))
            )
            if golden.get(mode, {}).get(key) != digest.get(mode, {}).get(key)
        ]
        assert digest == golden, f"migration digest drifted in {drift}"

    def test_live_mode_drops_nothing(self, migration_result):
        # The acceptance criterion: zero dropped in-flight requests under
        # live migration, while the restart arm demonstrably drops some.
        assert migration_result.live.dropped == 0
        assert migration_result.restart.dropped > 0

    def test_live_tail_at_least_twice_better(self, migration_result):
        restart_p99 = migration_result.restart.observed_p99_ms
        live_p99 = migration_result.live.observed_p99_ms
        assert live_p99 > 0
        assert restart_p99 >= 2 * live_p99

    def test_no_hung_client_events(self, migration_result):
        # Every outstanding CL-event FSM resolved across the manager
        # change — nothing wedged on either arm.
        assert migration_result.restart.hung_events == 0
        assert migration_result.live.hung_events == 0

    def test_live_moves_actually_happened(self, migration_result):
        live = migration_result.live
        assert live.live_migrations >= 1
        assert live.rebinds == live.live_migrations
        assert live.live_fallbacks == 0
        assert live.drain_seconds > 0
        # The restart arm used only the paper's path.
        assert migration_result.restart.live_migrations == 0
        assert migration_result.restart.rebinds == 0

    def test_storm_functions_only_fail_under_restart(self, migration_result):
        # Under restart moves the storm functions lose the build race
        # against the victims still on the board; live moves defer the
        # build past the drain, so every storm function comes up.
        assert migration_result.restart.storm_deploys_failed > 0
        assert migration_result.live.storm_deploys_failed == 0


def test_same_spec_same_digest(monkeypatch_module):
    """Bit-reproducibility: two identical runs, identical digests."""
    monkeypatch_module.setenv("REPRO_QUICK", "1")
    spec = MigrationSpec(timing=LoadTiming(warmup=0.5, duration=10.0))
    first = run_migration_mode("live", spec).to_golden()
    second = run_migration_mode("live", spec).to_golden()
    assert first == second
    assert first["live_migrations"] >= 1

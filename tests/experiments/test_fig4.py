"""Tests for the Figure 4 harnesses (calibration anchors + shapes)."""

import pytest

from repro.experiments import run_mm_sweep, run_rw_sweep, run_sobel_sweep
from repro.experiments.fig4 import GiB, KiB, MiB


def _index(points):
    return {(p.label, p.system): p.rtt for p in points}


class TestRwSweep:
    def test_anchors_match_paper(self):
        points = run_rw_sweep(sizes=[2 * GiB])
        by_key = _index(points)
        native = by_key[("2GB", "native")]
        grpc = by_key[("2GB", "blastfunction")]
        shm = by_key[("2GB", "blastfunction_shm")]
        assert native == pytest.approx(0.316, rel=0.05)
        assert 3.0 < grpc / native < 4.5
        assert 0.13 < shm - native < 0.18

    def test_rtt_monotonic_in_size(self):
        points = run_rw_sweep(sizes=[1 * MiB, 64 * MiB],
                              systems=("native",))
        rtts = [p.rtt for p in points]
        assert rtts[0] < rtts[1]

    def test_small_transfers_dominated_by_control(self):
        points = run_rw_sweep(sizes=[1 * KiB],
                              systems=("blastfunction_shm",))
        assert 0.5e-3 < points[0].rtt < 4e-3


class TestSobelSweep:
    def test_native_full_hd_matches_paper(self):
        points = run_sobel_sweep(sizes=[(1920, 1080)], systems=("native",))
        assert points[0].rtt == pytest.approx(14.53e-3, rel=0.08)

    def test_shm_overhead_small_constant(self):
        sizes = [(100, 100), (1920, 1080)]
        points = run_sobel_sweep(
            sizes=sizes, systems=("native", "blastfunction_shm")
        )
        by_key = _index(points)
        for width, height in sizes:
            label = f"{width}x{height}"
            overhead = (by_key[(label, "blastfunction_shm")]
                        - by_key[(label, "native")])
            assert 0.5e-3 < overhead < 4e-3

    def test_linear_in_pixels(self):
        points = run_sobel_sweep(
            sizes=[(480, 270), (960, 540), (1920, 1080)],
            systems=("native",),
        )
        r1, r2, r3 = [p.rtt for p in points]
        # Quadrupling pixels roughly quadruples the dominant terms.
        assert (r3 - r2) == pytest.approx(4 * (r2 - r1), rel=0.2)


class TestMMSweep:
    def test_4096_matches_paper(self):
        points = run_mm_sweep(sizes=[4096])
        by_key = _index(points)
        assert by_key[("4096x4096", "native")] == pytest.approx(
            3.571, rel=0.02
        )
        assert by_key[("4096x4096", "blastfunction_shm")] == pytest.approx(
            3.588, rel=0.02
        )
        assert by_key[("4096x4096", "blastfunction")] == pytest.approx(
            3.675, rel=0.02
        )

    def test_remote_minimum_rtt_about_2ms(self):
        points = run_mm_sweep(sizes=[16],
                              systems=("blastfunction", "blastfunction_shm"))
        for point in points:
            assert 1e-3 < point.rtt < 4e-3

    def test_relative_overhead_shrinks_with_compute(self):
        points = run_mm_sweep(sizes=[256, 2048],
                              systems=("native", "blastfunction_shm"))
        by_key = _index(points)

        def rel(label):
            native = by_key[(label, "native")]
            shm = by_key[(label, "blastfunction_shm")]
            return (shm - native) / native

        assert rel("2048x2048") < rel("256x256")

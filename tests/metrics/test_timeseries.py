"""Unit tests for time-series storage, queries and the scraper process."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MetricsRegistry, Scraper, TimeSeries, TimeSeriesDatabase
from repro.sim import Environment


class TestTimeSeries:
    def test_append_and_latest(self):
        series = TimeSeries("m")
        series.append(0.0, 1.0)
        series.append(1.0, 3.0)
        assert series.latest() == 3.0
        assert series.latest_time() == 1.0
        assert len(series) == 2

    def test_empty_latest_is_none(self):
        assert TimeSeries("m").latest() is None

    def test_non_monotonic_rejected(self):
        series = TimeSeries("m")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError):
            series.append(4.0, 2.0)

    def test_window_selection(self):
        series = TimeSeries("m")
        for t in range(10):
            series.append(float(t), float(t))
        assert series.window(3.0, 6.0) == [(3.0, 3.0), (4.0, 4.0),
                                           (5.0, 5.0), (6.0, 6.0)]

    def test_counter_rate(self):
        series = TimeSeries("m")
        # A counter increasing by 2 per second.
        for t in range(11):
            series.append(float(t), 2.0 * t)
        assert series.rate(window=5.0, now=10.0) == pytest.approx(2.0)

    def test_rate_with_too_few_samples_is_nan(self):
        series = TimeSeries("m")
        series.append(0.0, 1.0)
        assert math.isnan(series.rate(window=5.0, now=0.0))

    def test_rate_handles_counter_reset(self):
        series = TimeSeries("m")
        series.append(0.0, 100.0)
        series.append(10.0, 5.0)  # reset happened
        assert series.rate(window=10.0, now=10.0) == pytest.approx(0.5)

    def test_gauge_average(self):
        series = TimeSeries("m")
        series.append(0.0, 1.0)
        series.append(1.0, 3.0)
        assert series.avg(window=2.0, now=1.0) == pytest.approx(2.0)

    def test_increase(self):
        series = TimeSeries("m")
        series.append(0.0, 0.0)
        series.append(10.0, 30.0)
        assert series.increase(window=10.0, now=10.0) == pytest.approx(30.0)

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rate_of_monotone_counter_is_nonnegative(self, values):
        cumulative = 0.0
        series = TimeSeries("m")
        for index, value in enumerate(values):
            cumulative += value
            series.append(float(index), cumulative)
        rate = series.rate(window=float(len(values)), now=float(len(values) - 1))
        assert rate >= 0.0


class TestTimeSeriesDatabase:
    def test_series_created_on_demand(self):
        db = TimeSeriesDatabase()
        s1 = db.series("m", ("a=1",))
        s2 = db.series("m", ("a=1",))
        assert s1 is s2
        assert len(db) == 1

    def test_lookup_does_not_create(self):
        db = TimeSeriesDatabase()
        assert db.lookup("m") is None
        assert len(db) == 0

    def test_select_by_name(self):
        db = TimeSeriesDatabase()
        db.series("m", ("a=1",))
        db.series("m", ("a=2",))
        db.series("other", ())
        assert len(db.select("m")) == 2

    def test_select_matching_labels(self):
        db = TimeSeriesDatabase()
        db.series("m", ("device=fpga0", "node=a"))
        db.series("m", ("device=fpga1", "node=b"))
        found = db.select_matching("m", node="a")
        assert len(found) == 1
        assert "device=fpga0" in found[0].labels


class TestScraper:
    def test_scrapes_on_interval(self):
        env = Environment()
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        scraper = Scraper(env, interval=1.0)
        scraper.add_target("dm-0", registry, node="a")

        def workload(env):
            for _ in range(10):
                counter.inc()
                yield env.timeout(1.0)

        env.process(workload(env))
        env.run(until=5.5)
        series = scraper.database.select("ops_total")
        assert len(series) == 1
        # Scrapes at t=1..5 → 5 samples.
        assert len(series[0]) == 5
        assert scraper.scrape_count == 5

    def test_instance_labels_attached(self):
        env = Environment()
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        scraper = Scraper(env, interval=1.0)
        scraper.add_target("dm-0", registry, node="nodeA")
        env.run(until=1.5)
        series = scraper.database.select("g")[0]
        assert "instance=dm-0" in series.labels
        assert "node=nodeA" in series.labels

    def test_rate_query_over_scraped_counter(self):
        env = Environment()
        registry = MetricsRegistry()
        busy = registry.counter("busy_seconds_total")
        scraper = Scraper(env, interval=1.0)
        scraper.add_target("dm-0", registry)

        def device(env):
            # Busy 40% of the time.
            while True:
                busy.inc(0.4)
                yield env.timeout(1.0)

        env.process(device(env))
        env.run(until=20.0)
        series = scraper.database.select("busy_seconds_total")[0]
        assert series.rate(window=10.0) == pytest.approx(0.4, rel=0.05)

    def test_stop_halts_scraping(self):
        env = Environment()
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        scraper = Scraper(env, interval=1.0)
        scraper.add_target("t", registry)

        def stopper(env):
            yield env.timeout(3.5)
            scraper.stop()

        env.process(stopper(env))
        env.run(until=10.0)
        assert scraper.scrape_count == 3

    def test_remove_target(self):
        env = Environment()
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        scraper = Scraper(env, interval=1.0)
        scraper.add_target("t", registry)
        env.run(until=1.5)
        scraper.remove_target("t")
        env.run(until=5.0)
        series = scraper.database.select("g")[0]
        assert len(series) == 1

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Scraper(Environment(), interval=0.0)

"""Unit tests for the Prometheus-model metric primitives."""

import math

import pytest

from repro.metrics import MetricError, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry(namespace="dm")


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("requests_total", "Requests served")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self, registry):
        counter = registry.counter("requests_total")
        with pytest.raises(MetricError):
            counter.inc(-1.0)

    def test_namespace_prefix(self, registry):
        counter = registry.counter("busy_seconds_total")
        assert counter.name == "dm_busy_seconds_total"

    def test_labels_create_independent_children(self, registry):
        counter = registry.counter("ops_total", labelnames=["client"])
        counter.labels("alice").inc(3)
        counter.labels("bob").inc(1)
        assert counter.labels("alice").value == 3
        assert counter.labels("bob").value == 1

    def test_labels_by_keyword(self, registry):
        counter = registry.counter("ops_total", labelnames=["client", "op"])
        counter.labels(client="a", op="read").inc()
        assert counter.labels("a", "read").value == 1

    def test_wrong_label_count_rejected(self, registry):
        counter = registry.counter("ops_total", labelnames=["client"])
        with pytest.raises(MetricError):
            counter.labels("a", "b")

    def test_unlabelled_access_to_labelled_metric_rejected(self, registry):
        counter = registry.counter("ops_total", labelnames=["client"])
        with pytest.raises(MetricError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("connected_functions")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_dec_on_counter_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(MetricError):
            counter.dec()


class TestHistogram:
    def test_observe_accumulates_sum_and_count(self, registry):
        histogram = registry.histogram("latency_seconds", buckets=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(2.0)
        child = histogram.labels()
        assert child.count == 3
        assert child.sum == pytest.approx(2.55)

    def test_bucket_counts_are_cumulative_in_samples(self, registry):
        histogram = registry.histogram("latency_seconds", buckets=[0.1, 1.0])
        for v in (0.05, 0.06, 0.5, 3.0):
            histogram.observe(v)
        samples = {
            (name, labels.get("le")): value
            for name, labels, value in histogram.samples()
            if name.endswith("_bucket")
        }
        assert samples[("dm_latency_seconds_bucket", "0.1")] == 2
        assert samples[("dm_latency_seconds_bucket", "1.0")] == 3
        assert samples[("dm_latency_seconds_bucket", "+Inf")] == 4

    def test_quantile_estimation(self, registry):
        histogram = registry.histogram(
            "latency_seconds", buckets=[0.01, 0.02, 0.04, 0.08]
        )
        for _ in range(100):
            histogram.observe(0.015)
        q50 = histogram.labels().quantile(0.5)
        assert 0.01 <= q50 <= 0.02

    def test_quantile_empty_is_nan(self, registry):
        histogram = registry.histogram("latency_seconds")
        assert math.isnan(histogram.labels().quantile(0.5))

    def test_quantile_out_of_range(self, registry):
        histogram = registry.histogram("latency_seconds")
        with pytest.raises(MetricError):
            histogram.labels().quantile(1.5)

    def test_value_access_rejected(self, registry):
        histogram = registry.histogram("latency_seconds")
        with pytest.raises(MetricError):
            _ = histogram.value

    def test_inf_bucket_always_appended(self, registry):
        histogram = registry.histogram("h", buckets=[1.0, 2.0])
        assert math.isinf(histogram.buckets[-1])


class TestRegistry:
    def test_duplicate_name_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.counter("x_total")

    def test_invalid_type_rejected(self):
        from repro.metrics.registry import MetricFamily

        with pytest.raises(MetricError):
            MetricFamily("name", "", "summary")

    def test_contains_and_get(self, registry):
        registry.counter("x_total")
        assert "x_total" in registry
        assert registry.get("x_total").name == "dm_x_total"

    def test_collect_snapshot(self, registry):
        counter = registry.counter("ops_total", labelnames=["client"])
        counter.labels("a").inc(2)
        snapshot = registry.collect()
        assert snapshot["dm_ops_total"][("client=a",)] == 2.0

    def test_render_text_format(self, registry):
        gauge = registry.gauge("utilization", "FPGA time utilization")
        gauge.set(0.42)
        text = registry.render_text()
        assert "# HELP dm_utilization FPGA time utilization" in text
        assert "# TYPE dm_utilization gauge" in text
        assert "dm_utilization 0.42" in text

    def test_render_text_with_labels(self, registry):
        counter = registry.counter("ops_total", labelnames=["client"])
        counter.labels("alice").inc()
        assert 'dm_ops_total{client="alice"} 1.0' in registry.render_text()
